//! Stream tuples.
//!
//! A [`Tuple`] is a row of [`Value`]s tagged with its [`SchemaRef`].  Tuples
//! are the unit of data flowing through inter-operator queues; the engine
//! batches them into pages (see `dsms-engine`).  Tuples are O(1) to clone:
//! both the schema and the value buffer are reference-counted, so fan-out
//! operators such as DUPLICATE and SHUFFLE share one buffer across every
//! copy instead of deep-copying values.  The buffer is immutable; "updates"
//! ([`Tuple::with_value`]) rebuild it copy-on-write, leaving every existing
//! clone untouched.

use crate::error::{TypeError, TypeResult};
use crate::schema::SchemaRef;
use crate::time::Timestamp;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// The shared payload of a [`Tuple`]: the schema tag and the value row live
/// in one allocation behind one reference count, so cloning a tuple is a
/// single refcount bump (not one per component).
#[derive(Debug, PartialEq, Eq, Hash)]
struct TupleInner {
    schema: SchemaRef,
    values: Box<[Value]>,
}

/// A schema-tagged row of values; clone is a single reference-count bump.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    inner: Arc<TupleInner>,
}

impl Tuple {
    /// Creates a tuple, validating arity and per-attribute types against the
    /// schema.
    pub fn try_new(schema: SchemaRef, values: Vec<Value>) -> TypeResult<Self> {
        if values.len() != schema.arity() {
            return Err(TypeError::ArityMismatch {
                values: values.len(),
                attributes: schema.arity(),
            });
        }
        for (field, value) in schema.fields().iter().zip(values.iter()) {
            if !field.data_type().admits(value) {
                return Err(TypeError::TypeMismatch {
                    attribute: field.name().to_string(),
                    expected: field.data_type().to_string(),
                    actual: value.type_name().to_string(),
                });
            }
        }
        Ok(Tuple { inner: Arc::new(TupleInner { schema, values: values.into_boxed_slice() }) })
    }

    /// Creates a tuple, panicking if it does not conform to the schema.
    /// Convenience for statically known tuples in tests and examples.
    pub fn new(schema: SchemaRef, values: Vec<Value>) -> Self {
        Self::try_new(schema, values).expect("tuple does not conform to schema")
    }

    /// The tuple's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.inner.schema
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.inner.values.len()
    }

    /// All values in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.inner.values
    }

    /// The value at attribute `index`.
    pub fn value(&self, index: usize) -> TypeResult<&Value> {
        self.inner
            .values
            .get(index)
            .ok_or(TypeError::IndexOutOfBounds { index, len: self.inner.values.len() })
    }

    /// The value of the attribute with the given name.
    pub fn value_by_name(&self, name: &str) -> TypeResult<&Value> {
        let idx = self.inner.schema.index_of(name)?;
        self.value(idx)
    }

    /// The integer value of the named attribute, if it is an integer.
    pub fn int(&self, name: &str) -> TypeResult<i64> {
        let v = self.value_by_name(name)?;
        v.as_int().ok_or_else(|| TypeError::TypeMismatch {
            attribute: name.to_string(),
            expected: "int".into(),
            actual: v.type_name().into(),
        })
    }

    /// The float value of the named attribute (ints widen), if numeric.
    pub fn float(&self, name: &str) -> TypeResult<f64> {
        let v = self.value_by_name(name)?;
        v.as_float().ok_or_else(|| TypeError::TypeMismatch {
            attribute: name.to_string(),
            expected: "float".into(),
            actual: v.type_name().into(),
        })
    }

    /// The timestamp value of the named attribute, if it is a timestamp.
    pub fn timestamp(&self, name: &str) -> TypeResult<Timestamp> {
        let v = self.value_by_name(name)?;
        v.as_timestamp().ok_or_else(|| TypeError::TypeMismatch {
            attribute: name.to_string(),
            expected: "timestamp".into(),
            actual: v.type_name().into(),
        })
    }

    /// The timestamp value at attribute `index`, if it is a timestamp.  The
    /// index-based twin of [`Tuple::timestamp`] for per-tuple hot paths that
    /// resolve the attribute name once at operator construction.
    pub fn timestamp_at(&self, index: usize) -> TypeResult<Timestamp> {
        let v = self.value(index)?;
        v.as_timestamp().ok_or_else(|| TypeError::TypeMismatch {
            attribute: self
                .inner
                .schema
                .field(index)
                .map(|f| f.name().to_string())
                .unwrap_or_else(|_| index.to_string()),
            expected: "timestamp".into(),
            actual: v.type_name().into(),
        })
    }

    /// Returns a new tuple with the value at `index` replaced.  Copy-on-write:
    /// the shared buffer is rebuilt for the new tuple (individual values are
    /// still shared where they are reference-counted), and every existing
    /// clone of `self` keeps observing the original values.
    pub fn with_value(&self, index: usize, value: Value) -> TypeResult<Tuple> {
        let field = self.inner.schema.field(index)?;
        if !field.data_type().admits(&value) {
            return Err(TypeError::TypeMismatch {
                attribute: field.name().to_string(),
                expected: field.data_type().to_string(),
                actual: value.type_name().to_string(),
            });
        }
        let mut values = self.inner.values.to_vec();
        values[index] = value;
        Ok(Tuple {
            inner: Arc::new(TupleInner {
                schema: Arc::clone(&self.inner.schema),
                values: values.into_boxed_slice(),
            }),
        })
    }

    /// True when `self` and `other` share one underlying value buffer — i.e.
    /// one is an O(1) clone of the other and no deep copy has happened.
    /// Diagnostic hook for the zero-copy regression tests.
    pub fn shares_values_with(&self, other: &Tuple) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Projects this tuple onto the attributes at `indices` (in that order),
    /// producing a tuple of the projected schema.
    pub fn project(&self, indices: &[usize], projected_schema: SchemaRef) -> TypeResult<Tuple> {
        let mut values = Vec::with_capacity(indices.len());
        for &i in indices {
            values.push(self.value(i)?.clone());
        }
        Tuple::try_new(projected_schema, values)
    }

    /// Concatenates this tuple with another (used by joins); the caller
    /// supplies the pre-computed joined schema.
    pub fn concat(&self, other: &Tuple, joined_schema: SchemaRef) -> TypeResult<Tuple> {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend(self.inner.values.iter().cloned());
        values.extend(other.values().iter().cloned());
        Tuple::try_new(joined_schema, values)
    }

    /// Extracts the values at `indices` as a key (used by hash joins and
    /// group-by).
    pub fn key(&self, indices: &[usize]) -> TypeResult<Vec<Value>> {
        let mut key = Vec::with_capacity(indices.len());
        for &i in indices {
            key.push(self.value(i)?.clone());
        }
        Ok(key)
    }

    /// True if any attribute is `Null` (e.g. a failed sensor reading that
    /// requires imputation).
    pub fn has_null(&self) -> bool {
        self.inner.values.iter().any(Value::is_null)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cells: Vec<String> = self.inner.values.iter().map(|v| v.to_string()).collect();
        write!(f, "<{}>", cells.join(", "))
    }
}

/// Incremental named-attribute builder for [`Tuple`], convenient when
/// constructing tuples from workload generators.
#[derive(Debug, Clone)]
pub struct TupleBuilder {
    schema: SchemaRef,
    values: Vec<Value>,
}

impl TupleBuilder {
    /// Starts a builder for the given schema with all attributes `Null`.
    pub fn new(schema: SchemaRef) -> Self {
        let values = vec![Value::Null; schema.arity()];
        TupleBuilder { schema, values }
    }

    /// Sets the named attribute.
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> TypeResult<Self> {
        let idx = self.schema.index_of(name)?;
        self.values[idx] = value.into();
        Ok(self)
    }

    /// Finalizes the tuple, validating types.
    pub fn build(self) -> TypeResult<Tuple> {
        Tuple::try_new(self.schema, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn schema() -> SchemaRef {
        Schema::shared(&[
            ("segment", DataType::Int),
            ("timestamp", DataType::Timestamp),
            ("speed", DataType::Float),
        ])
    }

    fn tuple(seg: i64, ts: i64, speed: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![Value::Int(seg), Value::Timestamp(Timestamp::from_secs(ts)), Value::Float(speed)],
        )
    }

    #[test]
    fn construction_validates_arity_and_types() {
        let s = schema();
        assert!(Tuple::try_new(s.clone(), vec![Value::Int(1)]).is_err());
        let err =
            Tuple::try_new(s.clone(), vec![Value::Text("x".into()), Value::Null, Value::Null])
                .unwrap_err();
        assert!(matches!(err, TypeError::TypeMismatch { .. }));
        assert!(Tuple::try_new(s, vec![Value::Null, Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn named_accessors() {
        let t = tuple(7, 100, 52.5);
        assert_eq!(t.int("segment").unwrap(), 7);
        assert_eq!(t.float("speed").unwrap(), 52.5);
        assert_eq!(t.timestamp("timestamp").unwrap(), Timestamp::from_secs(100));
        assert!(t.int("speed").is_err());
        assert!(t.value_by_name("missing").is_err());
    }

    #[test]
    fn with_value_replaces_and_validates() {
        let t = tuple(7, 100, 52.5);
        let u = t.with_value(2, Value::Float(30.0)).unwrap();
        assert_eq!(u.float("speed").unwrap(), 30.0);
        assert_eq!(t.float("speed").unwrap(), 52.5, "original is unchanged");
        assert!(t.with_value(0, Value::Text("seg".into())).is_err());
    }

    #[test]
    fn projection_and_keys() {
        let t = tuple(7, 100, 52.5);
        let proj_schema = Arc::new(t.schema().project(&[2, 0]).unwrap());
        let p = t.project(&[2, 0], proj_schema).unwrap();
        assert_eq!(p.values(), &[Value::Float(52.5), Value::Int(7)]);
        assert_eq!(t.key(&[0]).unwrap(), vec![Value::Int(7)]);
    }

    #[test]
    fn concat_builds_join_outputs() {
        let left = tuple(7, 100, 52.5);
        let right_schema = Schema::shared(&[("vehicle", DataType::Int)]);
        let right = Tuple::new(right_schema.clone(), vec![Value::Int(99)]);
        let joined_schema = Arc::new(left.schema().join(&right_schema, "r_"));
        let j = left.concat(&right, joined_schema).unwrap();
        assert_eq!(j.arity(), 4);
        assert_eq!(j.int("vehicle").unwrap(), 99);
    }

    #[test]
    fn has_null_detects_missing_readings() {
        let s = schema();
        let dirty =
            Tuple::new(s, vec![Value::Int(1), Value::Timestamp(Timestamp::EPOCH), Value::Null]);
        assert!(dirty.has_null());
        assert!(!tuple(1, 1, 1.0).has_null());
    }

    #[test]
    fn builder_fills_by_name() {
        let t = TupleBuilder::new(schema())
            .set("segment", 3i64)
            .unwrap()
            .set("speed", 61.0)
            .unwrap()
            .set("timestamp", Timestamp::from_secs(40))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.int("segment").unwrap(), 3);
        assert_eq!(t.to_string(), "<3, 00:00:40, 61>");
    }
}
