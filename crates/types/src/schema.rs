//! Stream schemas.
//!
//! Every stream (and therefore every inter-operator queue) carries tuples of a
//! single [`Schema`].  Schemas are immutable once built and shared between
//! operators and punctuation via [`SchemaRef`] (`Arc<Schema>`), mirroring how
//! NiagaraST operators agree on tuple layout ahead of execution.

use crate::error::{TypeError, TypeResult};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Declared type of a schema attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean flag.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Stream timestamp (application time).
    Timestamp,
}

impl DataType {
    /// True when a runtime [`Value`] is admissible for this declared type
    /// (`Null` is admissible everywhere, and ints widen into float columns).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (DataType::Bool, Value::Bool(_))
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Float, Value::Int(_))
                | (DataType::Text, Value::Text(_))
                | (DataType::Timestamp, Value::Timestamp(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Timestamp => "timestamp",
        };
        write!(f, "{s}")
    }
}

/// A named, typed attribute of a stream schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    name: String,
    data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }
}

/// A shared, immutable stream schema.
pub type SchemaRef = Arc<Schema>;

/// An ordered collection of named, typed attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from fields, rejecting duplicate attribute names.
    pub fn try_new(fields: Vec<Field>) -> TypeResult<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name() == f.name()) {
                return Err(TypeError::DuplicateAttribute { name: f.name().to_string() });
            }
        }
        Ok(Schema { fields })
    }

    /// Builds a schema from fields, panicking on duplicate names.  Convenience
    /// for statically known schemas in tests and examples.
    pub fn new(fields: Vec<Field>) -> Self {
        Self::try_new(fields).expect("duplicate attribute name in schema")
    }

    /// Convenience constructor from `(name, type)` pairs wrapped in an `Arc`.
    pub fn shared(fields: &[(&str, DataType)]) -> SchemaRef {
        Arc::new(Schema::new(fields.iter().map(|(n, t)| Field::new(*n, *t)).collect::<Vec<_>>()))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields, in attribute order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at `index`.
    pub fn field(&self, index: usize) -> TypeResult<&Field> {
        self.fields.get(index).ok_or(TypeError::IndexOutOfBounds { index, len: self.fields.len() })
    }

    /// The index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> TypeResult<usize> {
        self.fields.iter().position(|f| f.name() == name).ok_or_else(|| {
            TypeError::UnknownAttribute {
                name: name.to_string(),
                available: self.fields.iter().map(|f| f.name().to_string()).collect(),
            }
        })
    }

    /// True if an attribute with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name() == name)
    }

    /// Attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name()).collect()
    }

    /// Returns a new schema containing only the attributes at `indices`, in
    /// that order (projection).
    pub fn project(&self, indices: &[usize]) -> TypeResult<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            fields.push(self.field(i)?.clone());
        }
        Schema::try_new(fields)
    }

    /// Concatenates two schemas (used by joins), prefixing duplicate names on
    /// the right side with `prefix` to keep names unique.
    pub fn join(&self, right: &Schema, prefix: &str) -> Schema {
        let mut fields = self.fields.clone();
        for f in right.fields() {
            let name = if self.contains(f.name()) {
                format!("{prefix}{}", f.name())
            } else {
                f.name().to_string()
            };
            fields.push(Field::new(name, f.data_type()));
        }
        Schema { fields }
    }

    /// Checks that the other schema is identical (names and types).
    pub fn check_same(&self, other: &Schema) -> TypeResult<()> {
        if self == other {
            Ok(())
        } else {
            Err(TypeError::SchemaMismatch {
                detail: format!("{} vs {}", self.describe(), other.describe()),
            })
        }
    }

    /// Compact human-readable description, e.g. `(ts: timestamp, speed: float)`.
    pub fn describe(&self) -> String {
        let cols: Vec<String> =
            self.fields.iter().map(|f| format!("{}: {}", f.name(), f.data_type())).collect();
        format!("({})", cols.join(", "))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// Incremental builder for [`Schema`].
#[derive(Debug, Default, Clone)]
pub struct SchemaBuilder {
    fields: Vec<Field>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Adds an attribute.
    pub fn field(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.fields.push(Field::new(name, data_type));
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> TypeResult<SchemaRef> {
        Ok(Arc::new(Schema::try_new(self.fields)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("freeway_id", DataType::Int),
            Field::new("milepost", DataType::Float),
            Field::new("timestamp", DataType::Timestamp),
            Field::new("speed", DataType::Float),
        ])
    }

    #[test]
    fn duplicate_names_rejected() {
        let err =
            Schema::try_new(vec![Field::new("x", DataType::Int), Field::new("x", DataType::Float)])
                .unwrap_err();
        assert!(matches!(err, TypeError::DuplicateAttribute { .. }));
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = detector_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.index_of("speed").unwrap(), 4);
        assert_eq!(s.field(1).unwrap().name(), "freeway_id");
        assert!(s.contains("milepost"));
        assert!(!s.contains("volume"));
        assert!(s.index_of("volume").is_err());
        assert!(s.field(9).is_err());
    }

    #[test]
    fn projection_preserves_order() {
        let s = detector_schema();
        let p = s.project(&[3, 0]).unwrap();
        assert_eq!(p.names(), vec!["timestamp", "id"]);
    }

    #[test]
    fn join_prefixes_duplicates() {
        let probe = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("speed", DataType::Float),
        ]);
        let joined = detector_schema().join(&probe, "probe_");
        assert_eq!(joined.arity(), 7);
        assert!(joined.contains("probe_id"));
        assert!(joined.contains("probe_speed"));
    }

    #[test]
    fn data_type_admits_nulls_and_widening() {
        assert!(DataType::Float.admits(&Value::Int(3)));
        assert!(DataType::Int.admits(&Value::Null));
        assert!(!DataType::Int.admits(&Value::Float(1.5)));
        assert!(DataType::Timestamp.admits(&Value::Timestamp(crate::Timestamp::EPOCH)));
    }

    #[test]
    fn builder_and_shared_constructor_agree() {
        let a = SchemaBuilder::new()
            .field("ts", DataType::Timestamp)
            .field("v", DataType::Float)
            .build()
            .unwrap();
        let b = Schema::shared(&[("ts", DataType::Timestamp), ("v", DataType::Float)]);
        assert_eq!(*a, *b);
        assert_eq!(a.describe(), "(ts: timestamp, v: float)");
    }

    #[test]
    fn check_same_reports_differences() {
        let a = Schema::shared(&[("ts", DataType::Timestamp)]);
        let b = Schema::shared(&[("ts", DataType::Int)]);
        assert!(a.check_same(&b).is_err());
        assert!(a.check_same(&a).is_ok());
    }
}
