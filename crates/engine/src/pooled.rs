//! Work-stealing worker-pool executor.
//!
//! [`PooledExecutor`] runs a whole [`QueryPlan`] on a fixed pool of worker
//! threads.  Each operator becomes a scheduler *task* — its
//! lifecycle state machine (`lifecycle::NodeMachine`) plus non-blocking
//! queue endpoints —
//! rather than a dedicated OS thread, so a plan with 64 operators runs
//! comfortably on 4 cores without 64 stacks and the attendant
//! context-switch storm.
//!
//! # Scheduling model
//!
//! * **Per-worker run queues with stealing.**  Every task has a *home*
//!   worker (its plan pin, or round-robin by node index).  A worker pops its
//!   own queue front-first (FIFO — pages flow through a chain of
//!   same-worker operators in submission order, without parking between
//!   hops) and steals from the *back* of other workers' queues when its own
//!   is empty.
//! * **Event-driven readiness.**  Tasks are scheduled by queue notification
//!   hooks (see [`crate::queue::ReadyNotify`]): data arriving on an input
//!   wakes the consumer, credit regained on an output (or a control message)
//!   wakes the producer.  An idle worker parks on its
//!   [`crossbeam_channel::Waker`] and costs zero CPU.
//! * **Lost-wakeup safety.**  Each task carries an atomic state (idle /
//!   queued / running / rerun / done).  A notification for a *running* task
//!   marks it rerun; when the worker finishes the step it observes the mark
//!   and requeues instead of idling, so a wakeup arriving mid-step is never
//!   lost.
//! * **Cooperative back-pressure.**  Data queues are soft-bounded: sends
//!   never block, but the lifecycle machine checks producer *credit* before
//!   each data step and goes idle when a downstream queue is full, to be
//!   woken by the consumer's next pop.  Flush/drain traffic ignores credit,
//!   so teardown cannot deadlock even at `queue_capacity = 1`.
//!
//! A worker executes a task's lifecycle step with a bounded budget
//! (`STEP_BUDGET` input sweeps or source polls), then requeues it if it
//! still has work — long-running operators time-slice instead of starving
//! the pool.  Scheduler observability lands in the per-operator metrics
//! (`sched_steps`, `sched_steals`, `max_queue_depth`) and the report-level
//! [`SchedulerSummary`].  The full task lifecycle and steal protocol are
//! documented in `docs/SCHEDULER.md`.

use crate::control::ControlMessage;
use crate::error::{EngineError, EngineResult};
use crate::executor::{panic_detail, ExecutionReport};
use crate::lifecycle::{LifecyclePorts, NodeMachine, StepOutcome};
use crate::metrics::{OperatorMetrics, SchedulerSummary};
use crate::operator::{Operator, OperatorContext, StreamItem};
use crate::page::{Page, PageBuilder};
use crate::plan::QueryPlan;
use crate::queue::{ControlPoll, DataPoll, DataQueue, PooledConsumer, PooledProducer, ReadyNotify};
use crossbeam_channel::Waker;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Data-work budget per scheduler step: how many input sweeps (or source
/// polls) a task may run before yielding the worker.
const STEP_BUDGET: usize = 64;

// Task states (atomic u8).  Transitions:
//   IDLE    --schedule-->  QUEUED   (pushed to home run queue)
//   QUEUED  --pop-------->  RUNNING
//   RUNNING --schedule-->  RERUN    (wakeup while stepping: don't lose it)
//   RUNNING --step Yield-> QUEUED   (requeued on the current worker)
//   RUNNING --step Idle--> IDLE     (unless RERUN intervened: then QUEUED)
//   RUNNING --step Done--> DONE
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RERUN: u8 = 3;
const DONE: u8 = 4;

/// Fixed worker pool running every operator of a plan as a stealable task.
pub struct PooledExecutor;

/// A task's view of one incoming connection.
struct PooledIn {
    /// Input port the connection is attached to.
    port: usize,
    consumer: PooledConsumer,
    /// Still expecting data: no end-of-stream (or hang-up) observed yet.
    open: bool,
}

/// A task's view of one outgoing connection.
struct PooledOut {
    /// Output port the connection is attached to.
    port: usize,
    producer: PooledProducer,
    builder: PageBuilder,
    /// The downstream consumer may still send control messages.
    control_open: bool,
    /// The data queue still has a live consumer (no send has failed).
    data_open: bool,
}

/// [`LifecyclePorts`] over a task's notification-driven queue endpoints.
struct PooledPorts {
    inputs: Vec<PooledIn>,
    outputs: Vec<PooledOut>,
    /// input port → index into `inputs` (dense routing table).
    in_route: Vec<Option<usize>>,
    /// output port → index into `outputs` (dense routing table).
    out_route: Vec<Option<usize>>,
}

impl PooledPorts {
    /// Failure teardown: relay shutdown upstream and drop all endpoints so
    /// neighbours unblock via their `Closed` polls.
    fn abort(&mut self) {
        for input in &self.inputs {
            input.consumer.send_control(ControlMessage::Shutdown);
            input.consumer.close();
        }
        for output in &self.outputs {
            output.producer.close();
        }
    }
}

impl LifecyclePorts for PooledPorts {
    fn in_count(&self) -> usize {
        self.inputs.len()
    }
    fn in_port(&self, slot: usize) -> usize {
        self.inputs[slot].port
    }
    fn in_open(&self, slot: usize) -> bool {
        self.inputs[slot].open
    }
    fn close_in(&mut self, slot: usize) {
        self.inputs[slot].open = false;
    }
    fn poll_in(&mut self, slot: usize) -> DataPoll {
        self.inputs[slot].consumer.poll_data()
    }
    fn in_depth(&self, slot: usize) -> usize {
        self.inputs[slot].consumer.pending()
    }
    fn in_slot(&self, port: usize) -> Option<usize> {
        self.in_route.get(port).copied().flatten()
    }
    fn send_control(&mut self, slot: usize, message: ControlMessage) -> bool {
        self.inputs[slot].consumer.send_control(message)
    }

    fn out_count(&self) -> usize {
        self.outputs.len()
    }
    fn out_port(&self, slot: usize) -> usize {
        self.outputs[slot].port
    }
    fn out_slot(&self, port: usize) -> Option<usize> {
        self.out_route.get(port).copied().flatten()
    }
    fn out_data_open(&self, slot: usize) -> bool {
        self.outputs[slot].data_open
    }
    fn push_item(&mut self, slot: usize, item: StreamItem, metrics: &mut OperatorMetrics) {
        let output = &mut self.outputs[slot];
        match item {
            StreamItem::Tuple(t) => {
                if let Some(page) = output.builder.push_tuple(t) {
                    metrics.pages_out += 1;
                    if !output.producer.send_page(page) {
                        output.data_open = false;
                    }
                }
            }
            StreamItem::Punctuation(p) => {
                let page = output.builder.push_punctuation(p);
                metrics.pages_out += 1;
                if !output.producer.send_page(page) {
                    output.data_open = false;
                }
            }
        }
    }
    fn push_page(&mut self, slot: usize, page: Page, metrics: &mut OperatorMetrics) {
        let output = &mut self.outputs[slot];
        if let Some(partial) = output.builder.flush() {
            metrics.pages_out += 1;
            if output.data_open && !output.producer.send_page(partial) {
                output.data_open = false;
            }
        }
        metrics.pages_out += 1;
        if output.data_open && !output.producer.send_page(page) {
            output.data_open = false;
        }
    }
    fn flush_out(&mut self, slot: usize, metrics: &mut OperatorMetrics) {
        let output = &mut self.outputs[slot];
        if let Some(page) = output.builder.flush() {
            metrics.pages_out += 1;
            if output.data_open && !output.producer.send_page(page) {
                output.data_open = false;
            }
        }
    }
    fn send_eos(&mut self, slot: usize) {
        self.outputs[slot].producer.send_end_of_stream();
    }
    fn control_open(&self, slot: usize) -> bool {
        self.outputs[slot].control_open
    }
    fn close_control(&mut self, slot: usize) {
        self.outputs[slot].control_open = false;
    }
    fn poll_control(&mut self, slot: usize) -> ControlPoll {
        self.outputs[slot].producer.poll_control()
    }
    fn has_credit(&self, slot: usize) -> bool {
        self.outputs[slot].producer.has_credit()
    }
}

/// The mutable half of a task, owned by whichever worker is stepping it.
struct TaskBody {
    operator: Box<dyn Operator>,
    ports: PooledPorts,
    machine: NodeMachine,
    metrics: OperatorMetrics,
    ctx: OperatorContext,
}

struct Task {
    state: AtomicU8,
    /// Preferred worker: schedule() pushes to this worker's run queue.
    home: usize,
    body: Mutex<TaskBody>,
}

struct WorkerState {
    queue: Mutex<VecDeque<usize>>,
    waker: Waker,
    parked: std::sync::atomic::AtomicBool,
    /// Task index this worker is currently stepping (`usize::MAX` = none).
    /// Left in place if the worker thread dies, so the join path can report
    /// which operator it was running.
    current: AtomicUsize,
}

/// Pool state shared by all workers and every notification hook.
struct Shared {
    tasks: Vec<Task>,
    workers: Vec<WorkerState>,
    /// Operator names in task order, for worker-crash attribution.
    names: Vec<String>,
    /// Tasks not yet DONE; the pool exits when this reaches zero.
    live: AtomicUsize,
    steals: AtomicU64,
    parks: AtomicU64,
    first_error: Mutex<Option<EngineError>>,
}

/// Error detail for a dead pool worker: which worker, and — when it died
/// mid-step — which operator it was running.
fn worker_panic_report(worker: usize, operator: Option<&str>) -> String {
    match operator {
        Some(name) => {
            format!("pool worker {worker} panicked while running operator `{name}`")
        }
        None => format!("pool worker {worker} panicked between tasks"),
    }
}

/// Queue-event hook: wakes (schedules) one task.  Holds the pool weakly so
/// the hooks retained inside queue endpoints cannot keep the pool — and the
/// operators inside it — alive after the run.
struct TaskNotify {
    shared: Weak<Shared>,
    task: usize,
}

impl ReadyNotify for TaskNotify {
    fn notify(&self) {
        if let Some(shared) = self.shared.upgrade() {
            schedule(&shared, self.task);
        }
    }
}

/// Marks a task runnable and makes sure a worker will see it.  Safe against
/// every race with a concurrent step: a task mid-step is marked RERUN (the
/// stepping worker requeues it), a task already queued is left alone.
fn schedule(shared: &Shared, task: usize) {
    let t = &shared.tasks[task];
    loop {
        match t.state.compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                let home = &shared.workers[t.home];
                home.queue.lock().push_back(task);
                home.waker.notify();
                // If the home worker is busy, rouse one parked helper so the
                // task can be stolen promptly.
                if !home.parked.load(Ordering::Acquire) {
                    if let Some(w) =
                        shared.workers.iter().find(|w| w.parked.load(Ordering::Acquire))
                    {
                        w.waker.notify();
                    }
                }
                return;
            }
            Err(RUNNING) => {
                if t.state
                    .compare_exchange(RUNNING, RERUN, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
                // The step ended (or another notifier won) between the two
                // exchanges; retry from the top.
            }
            Err(_) => return, // QUEUED, RERUN, or DONE: nothing to do
        }
    }
}

/// Counts one task down and, at zero, wakes every worker so the pool exits.
fn finish_one(shared: &Shared) {
    if shared.live.fetch_sub(1, Ordering::AcqRel) == 1 {
        for w in &shared.workers {
            w.waker.notify();
        }
    }
}

/// Pops the next runnable task: own queue front-first, then steal from the
/// back of the other workers' queues.
fn pop_task(shared: &Shared, me: usize) -> Option<usize> {
    if let Some(t) = shared.workers[me].queue.lock().pop_front() {
        return Some(t);
    }
    let n = shared.workers.len();
    for k in 1..n {
        let victim = (me + k) % n;
        if let Some(t) = shared.workers[victim].queue.lock().pop_back() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
    }
    None
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        match pop_task(shared, me) {
            Some(task) => run_task(shared, me, task),
            None => {
                if shared.live.load(Ordering::Acquire) == 0 {
                    return;
                }
                let w = &shared.workers[me];
                w.parked.store(true, Ordering::Release);
                let token = w.waker.token();
                // Recheck under the token: a task pushed (or the last task
                // finishing) between our failed pop and the token grab would
                // otherwise have notified nobody.
                if shared.live.load(Ordering::Acquire) == 0
                    || shared.workers.iter().any(|w| !w.queue.lock().is_empty())
                {
                    w.parked.store(false, Ordering::Release);
                    continue;
                }
                shared.parks.fetch_add(1, Ordering::Relaxed);
                w.waker.wait(token);
                w.parked.store(false, Ordering::Release);
            }
        }
    }
}

/// Runs one lifecycle step of `task` on worker `me` and disposes of the
/// outcome (requeue, idle, finish, or fail).
fn run_task(shared: &Shared, me: usize, task_id: usize) {
    let task = &shared.tasks[task_id];
    task.state.store(RUNNING, Ordering::Release);
    // Record what this worker is about to run; cleared on the way out.  A
    // worker thread that dies leaves the marker behind for the join path.
    shared.workers[me].current.store(task_id, Ordering::Release);
    let mut body = task.body.lock();
    let TaskBody { operator, ports, machine, metrics, ctx } = &mut *body;
    metrics.sched_steps += 1;
    if task.home != me {
        metrics.sched_steals += 1;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        machine.step(operator.as_mut(), ports, metrics, ctx, STEP_BUDGET)
    }));
    match outcome {
        Ok(Ok(StepOutcome::Yield)) => {
            drop(body);
            // Requeue on the *current* worker: a page chain keeps flowing
            // through same-worker operators without a park in between.
            task.state.store(QUEUED, Ordering::Release);
            shared.workers[me].queue.lock().push_back(task_id);
        }
        Ok(Ok(StepOutcome::Idle)) => {
            drop(body);
            if task
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // A wakeup arrived mid-step (RERUN): requeue instead of
                // idling, so the event is not lost.
                task.state.store(QUEUED, Ordering::Release);
                shared.workers[me].queue.lock().push_back(task_id);
            }
        }
        Ok(Ok(StepOutcome::Done)) => {
            drop(body);
            task.state.store(DONE, Ordering::Release);
            finish_one(shared);
        }
        Ok(Err(err)) => {
            // The lifecycle's guarded dispatch already attributed the
            // failure — keep its text identical across executors.
            let named = match err {
                named @ EngineError::OperatorFailed { .. } => named,
                other => EngineError::OperatorFailed {
                    operator: metrics.operator.clone(),
                    detail: other.to_string(),
                },
            };
            fail_task(shared, ports, named);
            drop(body);
            task.state.store(DONE, Ordering::Release);
            finish_one(shared);
        }
        Err(payload) => {
            let named = EngineError::OperatorFailed {
                operator: metrics.operator.clone(),
                detail: format!("operator panicked: {}", panic_detail(payload.as_ref())),
            };
            fail_task(shared, ports, named);
            drop(body);
            task.state.store(DONE, Ordering::Release);
            finish_one(shared);
        }
    }
    shared.workers[me].current.store(usize::MAX, Ordering::Release);
}

/// Records the first error and tears the failed task's connections down so
/// the rest of the query unwinds promptly.
fn fail_task(shared: &Shared, ports: &mut PooledPorts, err: EngineError) {
    let mut slot = shared.first_error.lock();
    if slot.is_none() {
        *slot = Some(err);
    }
    drop(slot);
    ports.abort();
}

impl PooledExecutor {
    /// Runs the plan on the configured worker pool
    /// ([`QueryPlan::with_worker_pool`]), defaulting to the machine's
    /// available parallelism.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::pooled::PooledExecutor;
    /// use dsms_engine::{Operator, OperatorContext, QueryPlan, SourceState};
    /// # use dsms_engine::EngineResult;
    /// # use dsms_types::{DataType, Schema, Tuple, Value};
    /// # struct Nums(i64);
    /// # impl Operator for Nums {
    /// #     fn name(&self) -> &str { "nums" }
    /// #     fn inputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> { Ok(()) }
    /// #     fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
    /// #         if self.0 >= 100 { return Ok(SourceState::Exhausted); }
    /// #         let schema = Schema::shared(&[("v", DataType::Int)]);
    /// #         ctx.emit(0, Tuple::new(schema, vec![Value::Int(self.0)]));
    /// #         self.0 += 1;
    /// #         Ok(SourceState::Producing)
    /// #     }
    /// # }
    /// # struct Count(u64);
    /// # impl Operator for Count {
    /// #     fn name(&self) -> &str { "count" }
    /// #     fn inputs(&self) -> usize { 1 }
    /// #     fn outputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
    /// #         self.0 += 1;
    /// #         Ok(())
    /// #     }
    /// # }
    ///
    /// // Same operator code as the other executors, now scheduled as tasks
    /// // on a 2-worker pool.
    /// let mut plan = QueryPlan::new().with_worker_pool(2);
    /// let source = plan.add(Nums(0));
    /// let sink = plan.add(Count(0));
    /// plan.connect_simple(source, sink)?;
    ///
    /// let report = PooledExecutor::run(plan)?;
    /// assert_eq!(report.operator("nums").unwrap().tuples_out, 100);
    /// assert_eq!(report.scheduler.unwrap().workers, 2);
    /// assert_eq!(report.total_feedback_dropped(), 0);
    /// # Ok::<(), dsms_engine::EngineError>(())
    /// ```
    pub fn run(plan: QueryPlan) -> EngineResult<ExecutionReport> {
        let workers = plan
            .worker_pool()
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Self::run_with_workers(plan, workers)
    }

    /// Runs the plan on exactly `workers` pool threads (clamped to at least
    /// one), overriding any plan-level setting.
    pub fn run_with_workers(mut plan: QueryPlan, workers: usize) -> EngineResult<ExecutionReport> {
        plan.validate()?;
        let started = Instant::now();
        let workers = workers.max(1);
        let page_capacity = plan.page_capacity;
        let queue_capacity = plan.queue_capacity;

        // Build one notification-driven connection per edge.
        let mut producer_ends: Vec<Option<PooledProducer>> = Vec::new();
        let mut consumer_ends: Vec<Option<PooledConsumer>> = Vec::new();
        for _ in &plan.edges {
            let (p, c) = DataQueue::pooled_connection(queue_capacity);
            producer_ends.push(Some(p));
            consumer_ends.push(Some(c));
        }

        // Assemble one task per node.
        let node_count = plan.nodes.len();
        let pins = std::mem::take(&mut plan.pins);
        let edges = plan.edges.clone();
        let recovery_policies = plan.recovery.clone();
        let quarantines = plan.quarantine.clone();
        let checkpoint_interval = plan.checkpoint_interval;
        let names: Vec<String> = plan.nodes.iter().map(|n| n.name.clone()).collect();
        let mut tasks: Vec<Task> = Vec::with_capacity(node_count);
        for (idx, node) in plan.nodes.drain(..).enumerate() {
            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            let mut in_route = vec![None; node.inputs];
            let mut out_route = vec![None; node.outputs];
            for (e_idx, e) in edges.iter().enumerate() {
                if e.to.0 == idx {
                    in_route[e.to_port] = Some(inputs.len());
                    inputs.push(PooledIn {
                        port: e.to_port,
                        consumer: consumer_ends[e_idx].take().expect("consumer end taken once"),
                        open: true,
                    });
                }
                if e.from.0 == idx {
                    out_route[e.from_port] = Some(outputs.len());
                    outputs.push(PooledOut {
                        port: e.from_port,
                        producer: producer_ends[e_idx].take().expect("producer end taken once"),
                        builder: PageBuilder::new(page_capacity),
                        control_open: true,
                        data_open: true,
                    });
                }
            }
            let is_source = inputs.is_empty();
            let home = pins.get(idx).copied().flatten().unwrap_or(idx) % workers;
            tasks.push(Task {
                state: AtomicU8::new(IDLE),
                home,
                body: Mutex::new(TaskBody {
                    metrics: OperatorMetrics::new(node.name),
                    operator: node.operator,
                    ports: PooledPorts { inputs, outputs, in_route, out_route },
                    machine: NodeMachine::supervised(
                        is_source,
                        recovery_policies[idx],
                        quarantines[idx],
                        checkpoint_interval,
                    ),
                    ctx: OperatorContext::new(),
                }),
            });
        }

        let shared = Arc::new(Shared {
            tasks,
            workers: (0..workers)
                .map(|_| WorkerState {
                    queue: Mutex::new(VecDeque::new()),
                    waker: Waker::new(),
                    parked: std::sync::atomic::AtomicBool::new(false),
                    current: AtomicUsize::new(usize::MAX),
                })
                .collect(),
            names,
            live: AtomicUsize::new(node_count),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            first_error: Mutex::new(None),
        });

        // Register the readiness hooks: each endpoint wakes the task that
        // owns it (weakly, so dropping the pool defuses them).
        for (i, task) in shared.tasks.iter().enumerate() {
            let body = task.body.lock();
            for input in &body.ports.inputs {
                input
                    .consumer
                    .set_on_data(Arc::new(TaskNotify { shared: Arc::downgrade(&shared), task: i }));
            }
            for output in &body.ports.outputs {
                output.producer.set_on_credit(Arc::new(TaskNotify {
                    shared: Arc::downgrade(&shared),
                    task: i,
                }));
                output.producer.set_on_control(Arc::new(TaskNotify {
                    shared: Arc::downgrade(&shared),
                    task: i,
                }));
            }
        }

        // Seed every task once, then let readiness events drive the rest.
        for i in 0..node_count {
            schedule(&shared, i);
        }

        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        let mut worker_panic: Option<String> = None;
        for (w, handle) in handles.into_iter().enumerate() {
            if handle.join().is_err() && worker_panic.is_none() {
                let at = shared.workers[w].current.load(Ordering::Acquire);
                let operator = shared.names.get(at).map(String::as_str);
                worker_panic = Some(worker_panic_report(w, operator));
            }
        }

        if let Some(err) = shared.first_error.lock().take() {
            return Err(err);
        }
        if let Some(detail) = worker_panic {
            return Err(EngineError::ExecutionFailed { detail });
        }

        let mut metrics = Vec::with_capacity(node_count);
        for task in &shared.tasks {
            let mut body = task.body.lock();
            if let Some(stats) = body.operator.feedback_stats() {
                body.metrics.feedback = stats;
            }
            body.metrics.elastic = body.operator.elastic_stats();
            metrics.push(std::mem::take(&mut body.metrics));
        }
        Ok(ExecutionReport {
            elapsed: started.elapsed(),
            metrics,
            scheduler: Some(SchedulerSummary {
                workers,
                steals: shared.steals.load(Ordering::Relaxed),
                parks: shared.parks.load(Ordering::Relaxed),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_panic_report_names_worker_and_operator() {
        assert_eq!(
            worker_panic_report(3, Some("join")),
            "pool worker 3 panicked while running operator `join`"
        );
        assert_eq!(worker_panic_report(0, None), "pool worker 0 panicked between tasks");
    }
}
