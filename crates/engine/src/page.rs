//! Pages of tuples.
//!
//! NiagaraST's inter-operator queues carry *pages* of tuples rather than
//! individual tuples: batching limits context switching between operator
//! threads.  The downside — a slow stream may take a long time to fill a
//! page — is resolved by having punctuation flush pages: a page is handed to
//! the queue when it is full *or* when a punctuation is appended
//! (paper Section 5, "Inter-Operator Communication").

use crate::operator::StreamItem;
use dsms_punctuation::Punctuation;
use dsms_types::Tuple;

/// A batch of stream items (tuples and embedded punctuation, in order).
///
/// Tuple and punctuation counts are maintained incrementally as items are
/// appended, so [`Page::tuple_count`] and [`Page::punctuation_count`] are
/// O(1) — executors consult them for every page they move.
#[derive(Debug, Clone, Default)]
pub struct Page {
    items: Vec<StreamItem>,
    tuples: usize,
    punctuations: usize,
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Self {
        Page::default()
    }

    /// Creates a page from items (used by tests).
    pub fn from_items(items: Vec<StreamItem>) -> Self {
        let tuples = items.iter().filter(|i| matches!(i, StreamItem::Tuple(_))).count();
        let punctuations = items.len() - tuples;
        Page { items, tuples, punctuations }
    }

    fn push(&mut self, item: StreamItem) {
        match &item {
            StreamItem::Tuple(_) => self.tuples += 1,
            StreamItem::Punctuation(_) => self.punctuations += 1,
        }
        self.items.push(item);
    }

    /// The items in arrival order.
    pub fn items(&self) -> &[StreamItem] {
        &self.items
    }

    /// Consumes the page, yielding its items.
    pub fn into_items(self) -> Vec<StreamItem> {
        self.items
    }

    /// Number of items (tuples + punctuations).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the page holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of tuples on the page (maintained incrementally; O(1)).
    pub fn tuple_count(&self) -> usize {
        self.tuples
    }

    /// Number of punctuations on the page (maintained incrementally; O(1)).
    pub fn punctuation_count(&self) -> usize {
        self.punctuations
    }

    /// Iterates over just the tuples.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.items.iter().filter_map(|i| match i {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Punctuation(_) => None,
        })
    }
}

/// Accumulates stream items into pages, flushing on capacity or punctuation.
#[derive(Debug)]
pub struct PageBuilder {
    capacity: usize,
    current: Page,
}

impl PageBuilder {
    /// Default page capacity (tuples per page), mirroring a small NiagaraST
    /// tuple page.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a builder with the given page capacity (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PageBuilder { capacity: capacity.max(1), current: Page::new() }
    }

    /// The page capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a tuple.  Returns a full page when the append filled it.
    ///
    /// The first tuple into a fresh page reserves the full page capacity: one
    /// allocation per data page rather than a doubling growth chain, while an
    /// idle builder holds no buffer.  Punctuation pushes deliberately do
    /// *not* reserve — punctuation flushes immediately, so a punctuation
    /// landing on an empty page would turn a 1-item page into a
    /// capacity-sized allocation.
    pub fn push_tuple(&mut self, tuple: Tuple) -> Option<Page> {
        if self.current.items.capacity() == 0 {
            self.current.items.reserve_exact(self.capacity);
        }
        self.current.push(StreamItem::Tuple(tuple));
        if self.current.len() >= self.capacity {
            Some(self.take())
        } else {
            None
        }
    }

    /// Appends a punctuation.  Punctuation always flushes the page
    /// (NiagaraST's rule), so this always returns a page.
    pub fn push_punctuation(&mut self, punctuation: Punctuation) -> Page {
        self.current.push(StreamItem::Punctuation(punctuation));
        self.take()
    }

    /// Number of items buffered in the partially built page.
    pub fn pending(&self) -> usize {
        self.current.len()
    }

    /// Takes whatever has been buffered (possibly empty), leaving the builder
    /// empty.  Used at end-of-stream.
    pub fn take(&mut self) -> Page {
        std::mem::take(&mut self.current)
    }

    /// Flushes the buffered items if any, returning `None` when empty.
    pub fn flush(&mut self) -> Option<Page> {
        if self.current.is_empty() {
            None
        } else {
            Some(self.take())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(ts: i64, v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(v)])
    }

    fn punct(ts: i64) -> Punctuation {
        Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(ts)).unwrap()
    }

    #[test]
    fn page_fills_at_capacity() {
        let mut b = PageBuilder::new(3);
        assert!(b.push_tuple(tuple(1, 1)).is_none());
        assert!(b.push_tuple(tuple(2, 2)).is_none());
        let page = b.push_tuple(tuple(3, 3)).expect("third tuple fills the page");
        assert_eq!(page.len(), 3);
        assert_eq!(page.tuple_count(), 3);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn punctuation_flushes_partial_page() {
        let mut b = PageBuilder::new(100);
        b.push_tuple(tuple(1, 1));
        b.push_tuple(tuple(2, 2));
        let page = b.push_punctuation(punct(2));
        assert_eq!(page.len(), 3);
        assert_eq!(page.tuple_count(), 2);
        assert_eq!(page.punctuation_count(), 1);
        assert_eq!(b.pending(), 0, "punctuation flushed everything");
    }

    #[test]
    fn flush_and_take_handle_empty_builders() {
        let mut b = PageBuilder::new(4);
        assert!(b.flush().is_none());
        assert!(b.take().is_empty());
        b.push_tuple(tuple(1, 1));
        let page = b.flush().unwrap();
        assert_eq!(page.len(), 1);
        assert!(b.flush().is_none());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut b = PageBuilder::new(0);
        assert_eq!(b.capacity(), 1);
        assert!(b.push_tuple(tuple(1, 1)).is_some(), "every tuple fills a 1-capacity page");
    }

    #[test]
    fn incremental_counts_survive_take_and_reuse() {
        let mut b = PageBuilder::new(4);
        b.push_tuple(tuple(1, 1));
        let page = b.push_punctuation(punct(1));
        assert_eq!((page.tuple_count(), page.punctuation_count()), (1, 1));
        // The builder restarts from zero after a flush.
        b.push_tuple(tuple(2, 2));
        b.push_tuple(tuple(3, 3));
        let page = b.flush().unwrap();
        assert_eq!((page.tuple_count(), page.punctuation_count()), (2, 0));
        assert!(b.take().is_empty());
    }

    #[test]
    fn page_iterators_and_counts() {
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1, 10)),
            StreamItem::Punctuation(punct(1)),
            StreamItem::Tuple(tuple(2, 20)),
        ]);
        assert_eq!(page.tuple_count(), 2);
        assert_eq!(page.punctuation_count(), 1);
        let values: Vec<i64> = page.tuples().map(|t| t.int("v").unwrap()).collect();
        assert_eq!(values, vec![10, 20]);
        assert!(!page.is_empty());
        assert_eq!(page.into_items().len(), 3);
    }
}
