//! Columnar pages of tuples.
//!
//! NiagaraST's inter-operator queues carry *pages* of tuples rather than
//! individual tuples: batching limits context switching between operator
//! threads.  The downside — a slow stream may take a long time to fill a
//! page — is resolved by having punctuation flush pages: a page is handed to
//! the queue when it is full *or* when a punctuation is appended
//! (paper Section 5, "Inter-Operator Communication").
//!
//! Since the columnar re-layout, a page is no longer an append-only vector of
//! interleaved stream items.  A [`ColumnarPage`] separates the data lane from
//! the punctuation lane: tuples sit contiguously in `rows`, punctuation in a
//! side lane annotated with its position among the rows, so arrival order is
//! reconstructed exactly on iteration.  Column access goes through
//! [`ColumnarPage::column`] (per-attribute value iterator) and
//! [`ColumnarPage::column_summary`] (min/max/null summary) — the hooks that
//! let punctuation guards classify a whole page without visiting any tuple.
//! The full contract, including why rows stay whole [`Tuple`] handles
//! (zero-copy: a clone is a refcount bump, never a value copy), is documented
//! in `docs/DATA_LAYOUT.md`.

use crate::operator::StreamItem;
use dsms_punctuation::Punctuation;
use dsms_types::{ColumnSummary, Tuple, Value};
use std::sync::Arc;

/// The row lane's representation: exclusively owned while a page is being
/// built (the common case — no indirection, no refcount), or shared after
/// [`ColumnarPage::share`] split off a second handle (supervised recovery
/// retains each input page this way: the retained copy and the dispatched
/// page reference one row allocation, so retention is O(1) per page instead
/// of a refcount bump per tuple).
#[derive(Debug, Clone)]
enum Rows {
    Owned(Vec<Tuple>),
    Shared(Arc<Vec<Tuple>>),
}

impl Default for Rows {
    fn default() -> Self {
        Rows::Owned(Vec::new())
    }
}

impl Rows {
    fn as_slice(&self) -> &[Tuple] {
        match self {
            Rows::Owned(rows) => rows,
            Rows::Shared(rows) => rows,
        }
    }

    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Mutable access, unsharing first if a second handle exists (only the
    /// builder mutates rows, and it never shares, so the unshare path is a
    /// defensive fallback rather than a hot path).
    fn to_mut(&mut self) -> &mut Vec<Tuple> {
        if let Rows::Shared(rows) = self {
            *self = Rows::Owned(rows.to_vec());
        }
        match self {
            Rows::Owned(rows) => rows,
            Rows::Shared(_) => unreachable!("unshared above"),
        }
    }
}

/// A batch of stream items in columnar layout: a contiguous row lane of
/// tuples plus a punctuation side lane that remembers where each punctuation
/// fell among the rows.
///
/// Tuple and punctuation counts are the lane lengths, so
/// [`ColumnarPage::tuple_count`] and [`ColumnarPage::punctuation_count`] are
/// O(1) — executors consult them for every page they move.  Iterating the
/// page (via [`IntoIterator`]) replays tuples and punctuation in exact
/// arrival order.
///
/// ```
/// use dsms_engine::PageBuilder;
/// use dsms_types::{DataType, Schema, Tuple, Value};
///
/// let schema = Schema::shared(&[("speed", DataType::Float)]);
/// let mut builder = PageBuilder::new(8);
/// for s in [48.0, 52.0, 45.5] {
///     builder.push_tuple(Tuple::new(schema.clone(), vec![Value::Float(s)]));
/// }
/// let page = builder.flush().unwrap();
/// assert_eq!(page.tuple_count(), 3);
///
/// // Column access: iterate one attribute without touching the others.
/// let speeds: Vec<&Value> = page.column(0).unwrap().collect();
/// assert_eq!(speeds.len(), 3);
///
/// // Summary access: classify the whole page in O(rows) once, then O(1).
/// let summary = page.column_summary(0).unwrap();
/// assert_eq!(summary.min(), Some(&Value::Float(45.5)));
/// assert_eq!(summary.max(), Some(&Value::Float(52.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ColumnarPage {
    /// The data lane: tuples in arrival order.
    rows: Rows,
    /// The punctuation lane: each entry records how many rows preceded the
    /// punctuation, so interleaved arrival order can be replayed exactly.
    puncts: Vec<(u32, Punctuation)>,
}

/// The page type flowing through inter-operator queues.
///
/// `Page` has been an alias for [`ColumnarPage`] since the columnar
/// re-layout; existing `Page`-based code compiles unchanged.
pub type Page = ColumnarPage;

impl ColumnarPage {
    /// Creates an empty page.
    pub fn new() -> Self {
        ColumnarPage::default()
    }

    /// Creates a page from interleaved items (used by tests).
    pub fn from_items(items: Vec<StreamItem>) -> Self {
        let mut page = ColumnarPage::new();
        for item in items {
            match item {
                StreamItem::Tuple(t) => page.push_tuple(t),
                StreamItem::Punctuation(p) => page.push_punctuation(p),
            }
        }
        page
    }

    fn push_tuple(&mut self, tuple: Tuple) {
        self.rows.to_mut().push(tuple);
    }

    fn push_punctuation(&mut self, punctuation: Punctuation) {
        self.puncts.push((self.rows.len() as u32, punctuation));
    }

    /// Splits off a second handle to this page: the returned page holds the
    /// same content, and both handles reference **one** row allocation (the
    /// row lane switches to its shared representation; the small punctuation
    /// lane is cloned).  Supervised recovery retains each input page this
    /// way before dispatching it — O(1) per page, where a `clone()` of an
    /// owned page costs a refcount bump per tuple.
    pub(crate) fn share(&mut self) -> ColumnarPage {
        let rows = match std::mem::take(&mut self.rows) {
            Rows::Owned(rows) => Arc::new(rows),
            Rows::Shared(rows) => rows,
        };
        let copy = ColumnarPage { rows: Rows::Shared(rows.clone()), puncts: self.puncts.clone() };
        self.rows = Rows::Shared(rows);
        copy
    }

    /// The row lane: every tuple on the page, in arrival order, as whole
    /// zero-copy [`Tuple`] handles.
    pub fn tuples(&self) -> &[Tuple] {
        self.rows.as_slice()
    }

    /// The punctuation lane, in arrival order.
    pub fn punctuations(&self) -> impl Iterator<Item = &Punctuation> {
        self.puncts.iter().map(|(_, p)| p)
    }

    /// Iterates the values of one column (attribute index) across all rows.
    ///
    /// Returns `None` when the page has no rows or any row lacks the column —
    /// the same condition under which [`ColumnarPage::column_summary`]
    /// declines to summarize.
    pub fn column(&self, index: usize) -> Option<impl Iterator<Item = &Value>> {
        let rows = self.rows.as_slice();
        if rows.is_empty() || rows.iter().any(|r| r.values().get(index).is_none()) {
            return None;
        }
        Some(rows.iter().map(move |r| &r.values()[index]))
    }

    /// Min/max/null summary of one column, computed on demand.
    ///
    /// Returns `None` when no sound summary exists (empty page, or a row
    /// lacks the column) — callers must then fall back to per-tuple
    /// evaluation.  See [`ColumnSummary::over_column`] for the soundness
    /// argument.
    ///
    /// ```
    /// use dsms_engine::PageBuilder;
    /// use dsms_types::{DataType, Schema, Tuple, Value};
    ///
    /// let schema = Schema::shared(&[("segment", DataType::Int)]);
    /// let mut builder = PageBuilder::new(4);
    /// for seg in [3, 1, 2] {
    ///     builder.push_tuple(Tuple::new(schema.clone(), vec![Value::Int(seg)]));
    /// }
    /// let page = builder.flush().unwrap();
    /// let summary = page.column_summary(0).unwrap();
    /// assert_eq!((summary.min(), summary.max()), (Some(&Value::Int(1)), Some(&Value::Int(3))));
    /// assert!(page.column_summary(7).is_none(), "no such column");
    /// ```
    pub fn column_summary(&self, index: usize) -> Option<ColumnSummary> {
        ColumnSummary::over_column(self.rows.as_slice(), index)
    }

    /// Consumes the page, yielding interleaved items in arrival order.
    pub fn into_items(self) -> Vec<StreamItem> {
        self.into_iter().collect()
    }

    /// Number of items (tuples + punctuations).
    pub fn len(&self) -> usize {
        self.rows.len() + self.puncts.len()
    }

    /// True when the page holds no items.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.puncts.is_empty()
    }

    /// Number of tuples on the page (row-lane length; O(1)).
    pub fn tuple_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of punctuations on the page (punctuation-lane length; O(1)).
    pub fn punctuation_count(&self) -> usize {
        self.puncts.len()
    }
}

/// Row-lane iterator backing [`PageIter`]: moves handles out of an
/// exclusively owned lane, or clones them out of a shared one (a retained
/// recovery copy still references the allocation).
#[derive(Debug)]
enum RowsIter {
    Owned(std::vec::IntoIter<Tuple>),
    Shared { rows: Arc<Vec<Tuple>>, next: usize },
}

impl RowsIter {
    fn next(&mut self) -> Option<Tuple> {
        match self {
            RowsIter::Owned(rows) => rows.next(),
            RowsIter::Shared { rows, next } => {
                let tuple = rows.get(*next)?.clone();
                *next += 1;
                Some(tuple)
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            RowsIter::Owned(rows) => rows.len(),
            RowsIter::Shared { rows, next } => rows.len() - next,
        }
    }
}

/// Order-preserving iterator over a page's items: merges the row lane and
/// the punctuation lane back into arrival order.
#[derive(Debug)]
pub struct PageIter {
    rows: RowsIter,
    puncts: std::vec::IntoIter<(u32, Punctuation)>,
    emitted_rows: u32,
}

impl Iterator for PageIter {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        if let Some((position, _)) = self.puncts.as_slice().first() {
            if *position <= self.emitted_rows {
                let (_, p) = self.puncts.next().expect("peeked punctuation");
                return Some(StreamItem::Punctuation(p));
            }
        }
        if let Some(tuple) = self.rows.next() {
            self.emitted_rows += 1;
            return Some(StreamItem::Tuple(tuple));
        }
        self.puncts.next().map(|(_, p)| StreamItem::Punctuation(p))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.rows.len() + self.puncts.len();
        (remaining, Some(remaining))
    }
}

impl IntoIterator for ColumnarPage {
    type Item = StreamItem;
    type IntoIter = PageIter;

    fn into_iter(self) -> PageIter {
        let rows = match self.rows {
            Rows::Owned(rows) => RowsIter::Owned(rows.into_iter()),
            // A uniquely held shared lane (the peer handle is gone) still
            // moves its handles out; only a live peer forces clone-out.
            Rows::Shared(rows) => match Arc::try_unwrap(rows) {
                Ok(rows) => RowsIter::Owned(rows.into_iter()),
                Err(rows) => RowsIter::Shared { rows, next: 0 },
            },
        };
        PageIter { rows, puncts: self.puncts.into_iter(), emitted_rows: 0 }
    }
}

/// Accumulates stream items into columnar pages, flushing on capacity or
/// punctuation.
#[derive(Debug)]
pub struct PageBuilder {
    capacity: usize,
    current: Page,
}

impl PageBuilder {
    /// Default page capacity (tuples per page), mirroring a small NiagaraST
    /// tuple page.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a builder with the given page capacity (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PageBuilder { capacity: capacity.max(1), current: Page::new() }
    }

    /// The page capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a tuple to the row lane.  Returns a full page when the append
    /// filled it.
    ///
    /// The first tuple into a fresh page reserves the full row-lane capacity:
    /// one allocation per data page rather than a doubling growth chain,
    /// while an idle builder holds no buffer.  Punctuation pushes
    /// deliberately do *not* reserve — punctuation flushes immediately, so a
    /// punctuation landing on an empty page would turn a 1-item page into a
    /// capacity-sized allocation.
    pub fn push_tuple(&mut self, tuple: Tuple) -> Option<Page> {
        let rows = self.current.rows.to_mut();
        if rows.capacity() == 0 {
            rows.reserve_exact(self.capacity);
        }
        rows.push(tuple);
        if self.current.len() >= self.capacity {
            Some(self.take())
        } else {
            None
        }
    }

    /// Appends a punctuation.  Punctuation always flushes the page
    /// (NiagaraST's rule), so this always returns a page.
    pub fn push_punctuation(&mut self, punctuation: Punctuation) -> Page {
        self.current.push_punctuation(punctuation);
        self.take()
    }

    /// Number of items buffered in the partially built page.
    pub fn pending(&self) -> usize {
        self.current.len()
    }

    /// Takes whatever has been buffered (possibly empty), leaving the builder
    /// empty.  Used at end-of-stream.
    pub fn take(&mut self) -> Page {
        std::mem::take(&mut self.current)
    }

    /// Flushes the buffered items if any, returning `None` when empty.
    pub fn flush(&mut self) -> Option<Page> {
        if self.current.is_empty() {
            None
        } else {
            Some(self.take())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(ts: i64, v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(v)])
    }

    fn punct(ts: i64) -> Punctuation {
        Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(ts)).unwrap()
    }

    #[test]
    fn page_fills_at_capacity() {
        let mut b = PageBuilder::new(3);
        assert!(b.push_tuple(tuple(1, 1)).is_none());
        assert!(b.push_tuple(tuple(2, 2)).is_none());
        let page = b.push_tuple(tuple(3, 3)).expect("third tuple fills the page");
        assert_eq!(page.len(), 3);
        assert_eq!(page.tuple_count(), 3);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn punctuation_flushes_partial_page() {
        let mut b = PageBuilder::new(100);
        b.push_tuple(tuple(1, 1));
        b.push_tuple(tuple(2, 2));
        let page = b.push_punctuation(punct(2));
        assert_eq!(page.len(), 3);
        assert_eq!(page.tuple_count(), 2);
        assert_eq!(page.punctuation_count(), 1);
        assert_eq!(b.pending(), 0, "punctuation flushed everything");
    }

    #[test]
    fn flush_and_take_handle_empty_builders() {
        let mut b = PageBuilder::new(4);
        assert!(b.flush().is_none());
        assert!(b.take().is_empty());
        b.push_tuple(tuple(1, 1));
        let page = b.flush().unwrap();
        assert_eq!(page.len(), 1);
        assert!(b.flush().is_none());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut b = PageBuilder::new(0);
        assert_eq!(b.capacity(), 1);
        assert!(b.push_tuple(tuple(1, 1)).is_some(), "every tuple fills a 1-capacity page");
    }

    #[test]
    fn incremental_counts_survive_take_and_reuse() {
        let mut b = PageBuilder::new(4);
        b.push_tuple(tuple(1, 1));
        let page = b.push_punctuation(punct(1));
        assert_eq!((page.tuple_count(), page.punctuation_count()), (1, 1));
        // The builder restarts from zero after a flush.
        b.push_tuple(tuple(2, 2));
        b.push_tuple(tuple(3, 3));
        let page = b.flush().unwrap();
        assert_eq!((page.tuple_count(), page.punctuation_count()), (2, 0));
        assert!(b.take().is_empty());
    }

    #[test]
    fn page_iterators_and_counts() {
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1, 10)),
            StreamItem::Punctuation(punct(1)),
            StreamItem::Tuple(tuple(2, 20)),
        ]);
        assert_eq!(page.tuple_count(), 2);
        assert_eq!(page.punctuation_count(), 1);
        let values: Vec<i64> = page.tuples().iter().map(|t| t.int("v").unwrap()).collect();
        assert_eq!(values, vec![10, 20]);
        assert!(!page.is_empty());
        assert_eq!(page.into_items().len(), 3);
    }

    #[test]
    fn iteration_replays_exact_arrival_order() {
        // Punctuation before any row, between rows, and trailing — all
        // positions round-trip through the two-lane layout.
        let items = vec![
            StreamItem::Punctuation(punct(0)),
            StreamItem::Tuple(tuple(1, 10)),
            StreamItem::Tuple(tuple(2, 20)),
            StreamItem::Punctuation(punct(2)),
            StreamItem::Tuple(tuple(3, 30)),
            StreamItem::Punctuation(punct(3)),
            StreamItem::Punctuation(punct(4)),
        ];
        let shape: Vec<bool> = items.iter().map(|i| matches!(i, StreamItem::Tuple(_))).collect();
        let page = Page::from_items(items);
        let replayed: Vec<bool> =
            page.into_items().iter().map(|i| matches!(i, StreamItem::Tuple(_))).collect();
        assert_eq!(replayed, shape);
    }

    #[test]
    fn column_access_and_summaries() {
        let mut b = PageBuilder::new(8);
        b.push_tuple(tuple(5, 40));
        b.push_tuple(tuple(7, 20));
        b.push_tuple(tuple(6, 60));
        let page = b.flush().unwrap();
        let vs: Vec<&Value> = page.column(1).unwrap().collect();
        assert_eq!(vs, vec![&Value::Int(40), &Value::Int(20), &Value::Int(60)]);
        let summary = page.column_summary(1).unwrap();
        assert_eq!(summary.min(), Some(&Value::Int(20)));
        assert_eq!(summary.max(), Some(&Value::Int(60)));
        assert_eq!(summary.nulls(), 0);
        assert!(page.column(2).is_none(), "out-of-range column");
        assert!(page.column_summary(2).is_none());
        assert!(Page::new().column(0).is_none(), "empty page has no columns");
    }

    #[test]
    fn share_splits_one_row_allocation_between_two_handles() {
        let mut b = PageBuilder::new(8);
        b.push_tuple(tuple(1, 10));
        b.push_tuple(tuple(2, 20));
        let mut page = b.push_punctuation(punct(2));
        let copy = page.share();
        assert_eq!(copy.tuple_count(), page.tuple_count());
        assert_eq!(copy.punctuation_count(), page.punctuation_count());
        // Both handles iterate the full content even while the peer lives.
        let values: Vec<i64> = copy.tuples().iter().map(|t| t.int("v").unwrap()).collect();
        assert_eq!(values, vec![10, 20]);
        assert_eq!(page.clone().into_items().len(), 3, "clone-out path under a live peer");
        drop(page);
        // With the peer gone, into_iter moves handles out again.
        assert_eq!(copy.into_items().len(), 3);
    }

    #[test]
    fn shared_page_iterates_in_arrival_order() {
        let mut page = Page::from_items(vec![
            StreamItem::Punctuation(punct(0)),
            StreamItem::Tuple(tuple(1, 10)),
            StreamItem::Punctuation(punct(1)),
            StreamItem::Tuple(tuple(2, 20)),
        ]);
        let retained = page.share();
        let shape = |p: Page| -> Vec<bool> {
            p.into_items().iter().map(|i| matches!(i, StreamItem::Tuple(_))).collect()
        };
        let expected = vec![false, true, false, true];
        assert_eq!(shape(page), expected, "clone-out iteration preserves arrival order");
        assert_eq!(shape(retained), expected, "the retained copy replays identically");
    }

    #[test]
    fn mutating_a_shared_page_unshares_it_first() {
        let mut page = Page::from_items(vec![StreamItem::Tuple(tuple(1, 10))]);
        let retained = page.share();
        page.push_tuple(tuple(2, 20));
        assert_eq!(page.tuple_count(), 2);
        assert_eq!(retained.tuple_count(), 1, "the retained copy is unaffected");
    }

    #[test]
    fn column_handles_short_rows_soundly() {
        // Rows of different arity: no sound per-column view exists.
        let wide = Schema::shared(&[("a", DataType::Int), ("b", DataType::Int)]);
        let narrow = Schema::shared(&[("a", DataType::Int)]);
        let page = Page::from_items(vec![
            StreamItem::Tuple(Tuple::new(wide, vec![Value::Int(1), Value::Int(2)])),
            StreamItem::Tuple(Tuple::new(narrow, vec![Value::Int(3)])),
        ]);
        assert!(page.column(0).is_some(), "column 0 exists in every row");
        assert!(page.column(1).is_none(), "column 1 is missing from one row");
        assert!(page.column_summary(1).is_none());
    }
}
