//! Plan execution.
//!
//! Three executors run the same [`QueryPlan`]s and the same operator code,
//! all driving every operator through the one lifecycle state machine in
//! the private `lifecycle` module:
//!
//! * [`ThreadedExecutor`] — NiagaraST's model made event-driven: one OS
//!   thread per operator, bounded page queues between them (back-pressure),
//!   and an out-of-band control channel per connection that is drained with
//!   priority before data is processed.  Idle threads *block* on a
//!   condvar-based multi-receiver wait spanning every input data queue and
//!   every downstream control channel — there is no sleep-polling anywhere in
//!   the runtime, so an idle operator costs zero CPU and reacts to the next
//!   page or feedback message the moment it arrives.
//! * [`crate::pooled::PooledExecutor`] — the whole plan on a fixed pool of
//!   worker threads with per-worker run queues and work stealing.  Operators
//!   become scheduler *tasks* rather than threads: readiness is driven by
//!   queue notifications (data available, credit regained, control pending),
//!   and a worker runs an operator until it exhausts its step budget or goes
//!   idle, so plans much wider than the machine (64 operators on 4 cores)
//!   run without 64 stacks and the attendant context-switch storm.
//! * [`SyncExecutor`] — a deterministic single-threaded scheduler that
//!   round-robins operators in topological order.  It produces bit-identical
//!   results run-to-run and is what most unit and integration tests use.
//!
//! All deliver feedback punctuation *against* the data flow: an operator
//! calls [`OperatorContext::send_feedback`] naming one of its *input* ports,
//! and the executor hands the message to the operator attached upstream of
//! that port, invoking its [`Operator::on_feedback`] callback with high
//! priority.  Data moves between operators page-at-a-time through the
//! [`Operator::on_page`] batch hook, and routing uses precomputed
//! port-to-edge tables rather than scanning the edge list per item.
//!
//! # The drain protocol
//!
//! Feedback is often produced exactly at end-of-stream — a sink's
//! [`Operator::on_flush`] summarising what it no longer needs — which is the
//! moment a naive runtime has already torn down the upstream operators.
//! Every executor therefore ends every operator in three phases:
//!
//! 1. **flush** — `on_flush`, remaining partial pages, then data
//!    end-of-stream to every consumer;
//! 2. **drain** — the operator stays alive, waiting on its downstream
//!    control channels, processing feedback and result requests (and
//!    relaying feedback further upstream) until *every* consumer has sent
//!    its control end-of-stream handshake (or hung up);
//! 3. **release** — it sends the control end-of-stream handshake on each of
//!    its own input connections, releasing its upstream producers from their
//!    drain phases in turn.
//!
//! Teardown therefore propagates sink → source, and feedback sent at or
//! after end-of-stream still reaches a live upstream operator.  Anything
//! *genuinely* undeliverable (e.g. feedback named on an unconnected input
//! port, or a connection whose upstream operator died after a failure) is
//! counted in [`OperatorMetrics::feedback_dropped`] rather than dropped
//! silently.  When an operator fails, [`ControlMessage::Shutdown`] relays
//! upstream so producers stop generating data nobody will read and the
//! query tears down promptly.  The full protocol, shared verbatim by all
//! three executors, lives in the `lifecycle` module and is documented in
//! `docs/SCHEDULER.md`.

use crate::control::ControlMessage;
use crate::error::{EngineError, EngineResult};
use crate::lifecycle::{LifecyclePorts, NodeMachine, StepOutcome};
use crate::metrics::{OperatorMetrics, RecoverySummary, SchedulerSummary};
use crate::operator::{Operator, OperatorContext, StreamItem};
use crate::page::{Page, PageBuilder};
use crate::plan::{NodeId, QueryPlan};
use crate::queue::{
    wait_any, ConsumerEnd, ControlPoll, DataPoll, DataQueue, ProducerEnd, QueueMessage,
};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The result of executing a plan: wall-clock time plus per-operator metrics.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Total wall-clock execution time.
    pub elapsed: Duration,
    /// Per-operator metrics, in plan node order.
    pub metrics: Vec<OperatorMetrics>,
    /// Pool-wide scheduler counters.  `Some` for pooled runs, `None` for the
    /// sync and threaded executors (which have no scheduler).
    pub scheduler: Option<SchedulerSummary>,
}

impl ExecutionReport {
    /// Metrics for the first operator with the given name, if any.
    pub fn operator(&self, name: &str) -> Option<&OperatorMetrics> {
        self.metrics.iter().find(|m| m.operator == name)
    }

    /// Sum of tuples emitted by all operators.
    pub fn total_tuples_out(&self) -> u64 {
        self.metrics.iter().map(|m| m.tuples_out).sum()
    }

    /// Sum of feedback messages sent by all operators.
    pub fn total_feedback(&self) -> u64 {
        self.metrics.iter().map(|m| m.feedback_out).sum()
    }

    /// Sum of feedback messages that could not be delivered (see
    /// [`OperatorMetrics::feedback_dropped`]).  A healthy run reports 0.
    pub fn total_feedback_dropped(&self) -> u64 {
        self.metrics.iter().map(|m| m.feedback_dropped).sum()
    }

    /// Run-wide recovery summary, aggregated from the per-operator counters:
    /// supervised restarts, checkpoints taken, tuples replayed, and the
    /// operators tombstoned under quarantine (with their terminal failures).
    pub fn recovery(&self) -> RecoverySummary {
        let mut summary = RecoverySummary::default();
        for m in &self.metrics {
            summary.restarts += m.restarts;
            summary.checkpoints_taken += m.checkpoints_taken;
            summary.tuples_replayed += m.tuples_replayed;
            if let Some(failure) = &m.failure {
                summary.quarantined.push((m.operator.clone(), failure.clone()));
            }
        }
        summary
    }
}

// ---------------------------------------------------------------------------
// Synchronous (deterministic) executor
// ---------------------------------------------------------------------------

/// Deterministic single-threaded executor.
pub struct SyncExecutor;

/// Shared state of one plan edge under the sync executor: an unbounded page
/// queue with a page builder on the producer side, plus the out-of-band
/// control queue flowing the other way.
struct SyncEdgeState {
    builder: PageBuilder,
    queue: VecDeque<Page>,
    eos: bool,
    control: VecDeque<ControlMessage>,
}

/// One node's view of its connected edges (dense slot arrays plus
/// port → slot routing tables).
struct SyncNodeState {
    ins: Vec<SyncIn>,
    outs: Vec<SyncOut>,
    in_route: Vec<Option<usize>>,
    out_route: Vec<Option<usize>>,
}

struct SyncIn {
    port: usize,
    edge: usize,
    open: bool,
}

struct SyncOut {
    port: usize,
    edge: usize,
    control_open: bool,
}

/// Per-step [`LifecyclePorts`] adapter: one node's slot state over the shared
/// edge array.
struct SyncPorts<'a> {
    state: &'a mut SyncNodeState,
    edges: &'a mut [SyncEdgeState],
}

impl LifecyclePorts for SyncPorts<'_> {
    fn in_count(&self) -> usize {
        self.state.ins.len()
    }
    fn in_port(&self, slot: usize) -> usize {
        self.state.ins[slot].port
    }
    fn in_open(&self, slot: usize) -> bool {
        self.state.ins[slot].open
    }
    fn close_in(&mut self, slot: usize) {
        self.state.ins[slot].open = false;
    }
    fn poll_in(&mut self, slot: usize) -> DataPoll {
        let edge = &mut self.edges[self.state.ins[slot].edge];
        if let Some(page) = edge.queue.pop_front() {
            DataPoll::Message(QueueMessage::Page(page))
        } else if edge.eos {
            DataPoll::Closed
        } else {
            DataPoll::Empty
        }
    }
    fn in_depth(&self, slot: usize) -> usize {
        self.edges[self.state.ins[slot].edge].queue.len()
    }
    fn in_slot(&self, port: usize) -> Option<usize> {
        self.state.in_route.get(port).copied().flatten()
    }
    fn send_control(&mut self, slot: usize, message: ControlMessage) -> bool {
        // Sync edges live for the whole run: control is always deliverable.
        self.edges[self.state.ins[slot].edge].control.push_back(message);
        true
    }

    fn out_count(&self) -> usize {
        self.state.outs.len()
    }
    fn out_port(&self, slot: usize) -> usize {
        self.state.outs[slot].port
    }
    fn out_slot(&self, port: usize) -> Option<usize> {
        self.state.out_route.get(port).copied().flatten()
    }
    fn out_data_open(&self, _slot: usize) -> bool {
        true
    }
    fn push_item(&mut self, slot: usize, item: StreamItem, metrics: &mut OperatorMetrics) {
        let edge = &mut self.edges[self.state.outs[slot].edge];
        match item {
            StreamItem::Tuple(t) => {
                if let Some(page) = edge.builder.push_tuple(t) {
                    metrics.pages_out += 1;
                    edge.queue.push_back(page);
                }
            }
            StreamItem::Punctuation(p) => {
                let page = edge.builder.push_punctuation(p);
                metrics.pages_out += 1;
                edge.queue.push_back(page);
            }
        }
    }
    fn push_page(&mut self, slot: usize, page: Page, metrics: &mut OperatorMetrics) {
        let edge = &mut self.edges[self.state.outs[slot].edge];
        if let Some(partial) = edge.builder.flush() {
            metrics.pages_out += 1;
            edge.queue.push_back(partial);
        }
        metrics.pages_out += 1;
        edge.queue.push_back(page);
    }
    fn flush_out(&mut self, slot: usize, metrics: &mut OperatorMetrics) {
        let edge = &mut self.edges[self.state.outs[slot].edge];
        if let Some(page) = edge.builder.flush() {
            metrics.pages_out += 1;
            edge.queue.push_back(page);
        }
    }
    fn send_eos(&mut self, slot: usize) {
        self.edges[self.state.outs[slot].edge].eos = true;
    }
    fn control_open(&self, slot: usize) -> bool {
        self.state.outs[slot].control_open
    }
    fn close_control(&mut self, slot: usize) {
        self.state.outs[slot].control_open = false;
    }
    fn poll_control(&mut self, slot: usize) -> ControlPoll {
        match self.edges[self.state.outs[slot].edge].control.pop_front() {
            Some(message) => ControlPoll::Message(message),
            None => ControlPoll::Empty,
        }
    }
}

impl SyncExecutor {
    /// Runs the plan to completion.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::{Operator, OperatorContext, QueryPlan, SourceState, SyncExecutor};
    /// # use dsms_engine::EngineResult;
    /// # use dsms_types::{DataType, Schema, Tuple, Value};
    /// # struct Nums(i64);
    /// # impl Operator for Nums {
    /// #     fn name(&self) -> &str { "nums" }
    /// #     fn inputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> { Ok(()) }
    /// #     fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
    /// #         if self.0 >= 10 { return Ok(SourceState::Exhausted); }
    /// #         let schema = Schema::shared(&[("v", DataType::Int)]);
    /// #         ctx.emit(0, Tuple::new(schema, vec![Value::Int(self.0)]));
    /// #         self.0 += 1;
    /// #         Ok(SourceState::Producing)
    /// #     }
    /// # }
    /// # struct Count(u64);
    /// # impl Operator for Count {
    /// #     fn name(&self) -> &str { "count" }
    /// #     fn inputs(&self) -> usize { 1 }
    /// #     fn outputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
    /// #         self.0 += 1;
    /// #         Ok(())
    /// #     }
    /// # }
    ///
    /// // `Nums` emits 0..10; `Count` tallies arrivals (implementations hidden).
    /// let mut plan = QueryPlan::new();
    /// let source = plan.add(Nums(0));
    /// let sink = plan.add(Count(0));
    /// plan.connect_simple(source, sink)?;
    ///
    /// let report = SyncExecutor::run(plan)?;
    /// assert_eq!(report.operator("nums").unwrap().tuples_out, 10);
    /// assert_eq!(report.operator("count").unwrap().tuples_in, 10);
    /// assert_eq!(report.total_feedback_dropped(), 0);
    /// # Ok::<(), dsms_engine::EngineError>(())
    /// ```
    pub fn run(mut plan: QueryPlan) -> EngineResult<ExecutionReport> {
        plan.validate()?;
        let started = Instant::now();
        let order = plan.topological_order();
        let page_capacity = plan.page_capacity;

        let mut edges: Vec<SyncEdgeState> = plan
            .edges
            .iter()
            .map(|_| SyncEdgeState {
                builder: PageBuilder::new(page_capacity),
                queue: VecDeque::new(),
                eos: false,
                control: VecDeque::new(),
            })
            .collect();

        let node_count = plan.nodes.len();
        let mut states: Vec<SyncNodeState> = Vec::with_capacity(node_count);
        for (idx, node) in plan.nodes.iter().enumerate() {
            let mut ins = Vec::new();
            let mut outs = Vec::new();
            let mut in_route = vec![None; node.inputs];
            let mut out_route = vec![None; node.outputs];
            for (e_idx, e) in plan.edges.iter().enumerate() {
                if e.to.0 == idx {
                    in_route[e.to_port] = Some(ins.len());
                    ins.push(SyncIn { port: e.to_port, edge: e_idx, open: true });
                }
                if e.from.0 == idx {
                    out_route[e.from_port] = Some(outs.len());
                    outs.push(SyncOut { port: e.from_port, edge: e_idx, control_open: true });
                }
            }
            states.push(SyncNodeState { ins, outs, in_route, out_route });
        }

        let mut machines: Vec<NodeMachine> = plan
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, n)| {
                NodeMachine::supervised(
                    n.inputs == 0,
                    plan.recovery[idx],
                    plan.quarantine[idx],
                    plan.checkpoint_interval,
                )
            })
            .collect();
        let mut metrics: Vec<OperatorMetrics> =
            plan.nodes.iter().map(|n| OperatorMetrics::new(n.name.clone())).collect();
        let mut ctx = OperatorContext::new();

        // Round-robin in topological order, one lifecycle step (budget 1) per
        // node per round, until every machine has released.  The machine runs
        // pending control before data within each step, so feedback crosses
        // one plan hop per round — exactly the cadence the previous
        // hand-rolled scheduler had — and the drain handshake (flush → drain
        // → release, propagating sink → source) rides the same loop instead
        // of needing a separate post-run delivery pass.
        loop {
            let mut activity = false;
            for &NodeId(n) in &order {
                if machines[n].is_done() {
                    continue;
                }
                let mut ports = SyncPorts { state: &mut states[n], edges: &mut edges };
                let outcome = machines[n]
                    .step(plan.nodes[n].operator.as_mut(), &mut ports, &mut metrics[n], &mut ctx, 1)
                    .map_err(|err| wrap(&plan, n, err))?;
                match outcome {
                    StepOutcome::Yield | StepOutcome::Done => activity = true,
                    StepOutcome::Idle => {}
                }
            }
            if machines.iter().all(|m| m.is_done()) {
                break;
            }
            if !activity {
                return Err(EngineError::ExecutionFailed {
                    detail: "execution stalled: no operator made progress".into(),
                });
            }
        }

        // Fold in feedback and elastic stats.
        for (n, node) in plan.nodes.iter().enumerate() {
            if let Some(stats) = node.operator.feedback_stats() {
                metrics[n].feedback = stats;
            }
            metrics[n].elastic = node.operator.elastic_stats();
        }

        Ok(ExecutionReport { elapsed: started.elapsed(), metrics, scheduler: None })
    }
}

fn wrap(plan: &QueryPlan, node: usize, err: EngineError) -> EngineError {
    match err {
        // The lifecycle's guarded dispatch already attributed the failure —
        // keep its text identical across all three executors.
        named @ EngineError::OperatorFailed { .. } => named,
        other => EngineError::OperatorFailed {
            operator: plan.nodes[node].name.clone(),
            detail: other.to_string(),
        },
    }
}

/// Human-readable form of a panic payload (`&str` and `String` payloads are
/// the common cases from `panic!`).
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

// ---------------------------------------------------------------------------
// Threaded (NiagaraST-style, event-driven) executor
// ---------------------------------------------------------------------------

/// One OS thread per operator, bounded page queues, out-of-band control.
/// Event-driven: idle threads block on channel events (no sleep-polling),
/// and end-of-stream runs the flush → drain → release protocol described in
/// the module docs so flush-time feedback is delivered upstream.
pub struct ThreadedExecutor;

/// A node's view of one incoming connection.
struct ThreadedInput {
    /// Input port the connection is attached to.
    port: usize,
    consumer: ConsumerEnd,
    /// Still expecting data: no end-of-stream (or hang-up) observed yet.
    open: bool,
}

/// A node's view of one outgoing connection.
struct ThreadedOutput {
    /// Output port the connection is attached to.
    port: usize,
    producer: ProducerEnd,
    builder: PageBuilder,
    /// The downstream consumer may still send control messages: its control
    /// end-of-stream handshake has not arrived and it has not hung up.
    control_open: bool,
    /// The data queue still has a live consumer (no send has failed).
    data_open: bool,
}

/// [`LifecyclePorts`] over a node's blocking channel endpoints.
struct ThreadedPorts {
    inputs: Vec<ThreadedInput>,
    outputs: Vec<ThreadedOutput>,
    /// input port → index into `inputs` (dense routing table).
    in_route: Vec<Option<usize>>,
    /// output port → index into `outputs` (dense routing table).
    out_route: Vec<Option<usize>>,
}

struct ThreadedNode {
    name: String,
    operator: Box<dyn Operator>,
    ports: ThreadedPorts,
    recovery: crate::plan::RecoveryPolicy,
    quarantine: bool,
    checkpoint_interval: u64,
}

impl ThreadedPorts {
    /// Parks the thread until any open input has data or any open downstream
    /// control channel has traffic (or an endpoint hangs up).  Event-driven:
    /// the multi-receiver wait is condvar-based, so an idle operator consumes
    /// no CPU.
    fn block_on_events(&self, include_inputs: bool) {
        let inputs: Vec<&ConsumerEnd> = if include_inputs {
            self.inputs.iter().filter(|i| i.open).map(|i| &i.consumer).collect()
        } else {
            Vec::new()
        };
        let outputs: Vec<&ProducerEnd> =
            self.outputs.iter().filter(|o| o.control_open).map(|o| &o.producer).collect();
        wait_any(&inputs, &outputs);
    }
}

impl LifecyclePorts for ThreadedPorts {
    fn in_count(&self) -> usize {
        self.inputs.len()
    }
    fn in_port(&self, slot: usize) -> usize {
        self.inputs[slot].port
    }
    fn in_open(&self, slot: usize) -> bool {
        self.inputs[slot].open
    }
    fn close_in(&mut self, slot: usize) {
        self.inputs[slot].open = false;
    }
    fn poll_in(&mut self, slot: usize) -> DataPoll {
        self.inputs[slot].consumer.poll_data()
    }
    fn in_depth(&self, slot: usize) -> usize {
        self.inputs[slot].consumer.pending()
    }
    fn in_slot(&self, port: usize) -> Option<usize> {
        self.in_route.get(port).copied().flatten()
    }
    fn send_control(&mut self, slot: usize, message: ControlMessage) -> bool {
        self.inputs[slot].consumer.send_control(message)
    }

    fn out_count(&self) -> usize {
        self.outputs.len()
    }
    fn out_port(&self, slot: usize) -> usize {
        self.outputs[slot].port
    }
    fn out_slot(&self, port: usize) -> Option<usize> {
        self.out_route.get(port).copied().flatten()
    }
    fn out_data_open(&self, slot: usize) -> bool {
        self.outputs[slot].data_open
    }
    fn push_item(&mut self, slot: usize, item: StreamItem, metrics: &mut OperatorMetrics) {
        let output = &mut self.outputs[slot];
        match item {
            StreamItem::Tuple(t) => {
                if let Some(page) = output.builder.push_tuple(t) {
                    metrics.pages_out += 1;
                    if !output.producer.send_page(page) {
                        output.data_open = false;
                    }
                }
            }
            StreamItem::Punctuation(p) => {
                let page = output.builder.push_punctuation(p);
                metrics.pages_out += 1;
                if !output.producer.send_page(page) {
                    output.data_open = false;
                }
            }
        }
    }
    fn push_page(&mut self, slot: usize, page: Page, metrics: &mut OperatorMetrics) {
        let output = &mut self.outputs[slot];
        if let Some(partial) = output.builder.flush() {
            metrics.pages_out += 1;
            if output.data_open && !output.producer.send_page(partial) {
                output.data_open = false;
            }
        }
        metrics.pages_out += 1;
        if output.data_open && !output.producer.send_page(page) {
            output.data_open = false;
        }
    }
    fn flush_out(&mut self, slot: usize, metrics: &mut OperatorMetrics) {
        let output = &mut self.outputs[slot];
        if let Some(page) = output.builder.flush() {
            metrics.pages_out += 1;
            if output.data_open && !output.producer.send_page(page) {
                output.data_open = false;
            }
        }
    }
    fn send_eos(&mut self, slot: usize) {
        self.outputs[slot].producer.send_end_of_stream();
    }
    fn control_open(&self, slot: usize) -> bool {
        self.outputs[slot].control_open
    }
    fn close_control(&mut self, slot: usize) {
        self.outputs[slot].control_open = false;
    }
    fn poll_control(&mut self, slot: usize) -> ControlPoll {
        self.outputs[slot].producer.poll_control()
    }
}

impl ThreadedExecutor {
    /// Runs the plan to completion, one thread per operator.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::{Operator, OperatorContext, QueryPlan, SourceState, ThreadedExecutor};
    /// # use dsms_engine::EngineResult;
    /// # use dsms_types::{DataType, Schema, Tuple, Value};
    /// # struct Nums(i64);
    /// # impl Operator for Nums {
    /// #     fn name(&self) -> &str { "nums" }
    /// #     fn inputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> { Ok(()) }
    /// #     fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
    /// #         if self.0 >= 100 { return Ok(SourceState::Exhausted); }
    /// #         let schema = Schema::shared(&[("v", DataType::Int)]);
    /// #         ctx.emit(0, Tuple::new(schema, vec![Value::Int(self.0)]));
    /// #         self.0 += 1;
    /// #         Ok(SourceState::Producing)
    /// #     }
    /// # }
    /// # struct Count(u64);
    /// # impl Operator for Count {
    /// #     fn name(&self) -> &str { "count" }
    /// #     fn inputs(&self) -> usize { 1 }
    /// #     fn outputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
    /// #         self.0 += 1;
    /// #         Ok(())
    /// #     }
    /// # }
    ///
    /// // Same operator code as under `SyncExecutor`, now one thread per
    /// // operator with bounded queues (back-pressure) between them.
    /// let mut plan = QueryPlan::new().with_queue_capacity(4);
    /// let source = plan.add(Nums(0));
    /// let sink = plan.add(Count(0));
    /// plan.connect_simple(source, sink)?;
    ///
    /// let report = ThreadedExecutor::run(plan)?;
    /// assert_eq!(report.operator("nums").unwrap().tuples_out, 100);
    /// assert_eq!(report.total_feedback_dropped(), 0);
    /// # Ok::<(), dsms_engine::EngineError>(())
    /// ```
    pub fn run(mut plan: QueryPlan) -> EngineResult<ExecutionReport> {
        plan.validate()?;
        let started = Instant::now();
        let page_capacity = plan.page_capacity;
        let queue_capacity = plan.queue_capacity;

        // Build one connection per edge.
        let mut producer_ends: Vec<Option<ProducerEnd>> = Vec::new();
        let mut consumer_ends: Vec<Option<ConsumerEnd>> = Vec::new();
        for _ in &plan.edges {
            let (p, c) = DataQueue::connection(queue_capacity);
            producer_ends.push(Some(p));
            consumer_ends.push(Some(c));
        }

        // Assemble per-node runtimes with dense port routing tables.
        let mut runtimes: Vec<ThreadedNode> = Vec::with_capacity(plan.nodes.len());
        let edges = plan.edges.clone();
        let recovery_policies = plan.recovery.clone();
        let quarantines = plan.quarantine.clone();
        let checkpoint_interval = plan.checkpoint_interval;
        for (idx, node) in plan.nodes.drain(..).enumerate() {
            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            let mut in_route = vec![None; node.inputs];
            let mut out_route = vec![None; node.outputs];
            for (e_idx, e) in edges.iter().enumerate() {
                if e.to.0 == idx {
                    in_route[e.to_port] = Some(inputs.len());
                    inputs.push(ThreadedInput {
                        port: e.to_port,
                        consumer: consumer_ends[e_idx].take().expect("consumer end taken once"),
                        open: true,
                    });
                }
                if e.from.0 == idx {
                    out_route[e.from_port] = Some(outputs.len());
                    outputs.push(ThreadedOutput {
                        port: e.from_port,
                        producer: producer_ends[e_idx].take().expect("producer end taken once"),
                        builder: PageBuilder::new(page_capacity),
                        control_open: true,
                        data_open: true,
                    });
                }
            }
            runtimes.push(ThreadedNode {
                name: node.name,
                operator: node.operator,
                ports: ThreadedPorts { inputs, outputs, in_route, out_route },
                recovery: recovery_policies[idx],
                quarantine: quarantines[idx],
                checkpoint_interval,
            });
        }

        // Run each node on its own thread; remember each node's name so a
        // panicking operator can be identified at join time.
        let handles: Vec<_> = runtimes
            .into_iter()
            .map(|node| {
                let name = node.name.clone();
                (name, std::thread::spawn(move || run_threaded_node(node)))
            })
            .collect();

        let mut metrics = Vec::with_capacity(handles.len());
        let mut first_error: Option<EngineError> = None;
        for (name, handle) in handles {
            match handle.join() {
                Ok(Ok(m)) => metrics.push(m),
                Ok(Err(e)) => first_error = first_error.or(Some(e)),
                Err(payload) => {
                    first_error = first_error.or(Some(EngineError::OperatorFailed {
                        operator: name,
                        detail: format!(
                            "operator thread panicked: {}",
                            panic_detail(payload.as_ref())
                        ),
                    }))
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(ExecutionReport { elapsed: started.elapsed(), metrics, scheduler: None })
    }
}

/// The per-thread operator loop: drive the shared lifecycle machine with an
/// unlimited step budget (the thread owns the operator), parking on channel
/// events whenever the machine goes idle.
fn run_threaded_node(mut node: ThreadedNode) -> Result<OperatorMetrics, EngineError> {
    let mut metrics = OperatorMetrics::new(node.name.clone());
    let mut ctx = OperatorContext::new();
    let mut machine = NodeMachine::supervised(
        node.ports.inputs.is_empty(),
        node.recovery,
        node.quarantine,
        node.checkpoint_interval,
    );
    let result = loop {
        match machine.step(
            node.operator.as_mut(),
            &mut node.ports,
            &mut metrics,
            &mut ctx,
            usize::MAX,
        ) {
            Ok(StepOutcome::Done) => break Ok(()),
            Ok(StepOutcome::Yield) => {}
            Ok(StepOutcome::Idle) => node.ports.block_on_events(machine.waiting_on_inputs()),
            Err(err) => break Err(err),
        }
    };
    match result {
        Ok(()) => {
            if let Some(stats) = node.operator.feedback_stats() {
                metrics.feedback = stats;
            }
            metrics.elastic = node.operator.elastic_stats();
            Ok(metrics)
        }
        Err(err) => {
            // Failure teardown: ask upstream producers to stop generating
            // data nobody will read.  Downstream learns from the dropped
            // endpoints (its polls report `Closed`), so the whole query
            // unwinds promptly.
            for input in &node.ports.inputs {
                input.consumer.send_control(ControlMessage::Shutdown);
            }
            Err(match err {
                // The lifecycle's guarded dispatch already attributed the
                // failure — keep its text identical across executors.
                named @ EngineError::OperatorFailed { .. } => named,
                other => {
                    EngineError::OperatorFailed { operator: node.name, detail: other.to_string() }
                }
            })
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::SourceState;
    use dsms_feedback::FeedbackPunctuation;
    use dsms_punctuation::{Pattern, PatternItem, Punctuation};
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Tuple, Value};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(ts: i64, v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(v)])
    }

    /// Source emitting `0..n` with punctuation every `punct_every` tuples.
    struct CountingSource {
        n: i64,
        next: i64,
        punct_every: i64,
        suppressed_below: Option<i64>,
        feedback_seen: Arc<Mutex<Vec<FeedbackPunctuation>>>,
    }

    impl CountingSource {
        fn new(n: i64, punct_every: i64) -> Self {
            CountingSource {
                n,
                next: 0,
                punct_every,
                suppressed_below: None,
                feedback_seen: Arc::new(Mutex::new(Vec::new())),
            }
        }
    }

    impl Operator for CountingSource {
        fn name(&self) -> &str {
            "source"
        }
        fn inputs(&self) -> usize {
            0
        }
        fn on_tuple(&mut self, _i: usize, _t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _output: usize,
            feedback: FeedbackPunctuation,
            _ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            // Exploit "v >= k is assumed away" by remembering the bound.
            if let Ok(PatternItem::Ge(Value::Int(k))) = feedback.pattern().item_for("v").cloned() {
                self.suppressed_below = Some(k);
            }
            self.feedback_seen.lock().push(feedback);
            Ok(())
        }
        fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
            if self.next >= self.n {
                return Ok(SourceState::Exhausted);
            }
            let v = self.next;
            self.next += 1;
            let skip = self.suppressed_below.map(|k| v >= k).unwrap_or(false);
            if !skip {
                ctx.emit(0, tuple(v, v));
            }
            if self.punct_every > 0 && v % self.punct_every == self.punct_every - 1 {
                ctx.emit_punctuation(
                    0,
                    Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(v)).unwrap(),
                );
            }
            Ok(SourceState::Producing)
        }
    }

    /// Filter keeping even values, forwarding punctuation.
    struct EvenFilter;

    impl Operator for EvenFilter {
        fn name(&self) -> &str {
            "even"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            if t.int("v").unwrap_or(0) % 2 == 0 {
                ctx.emit(0, t);
            }
            Ok(())
        }
    }

    /// Sink collecting tuples; optionally sends feedback after a threshold,
    /// on a fixed cadence, or from `on_flush` (the regression case: feedback
    /// produced at end-of-stream).
    struct CollectingSink {
        collected: Arc<Mutex<Vec<Tuple>>>,
        punctuations: Arc<Mutex<Vec<Punctuation>>>,
        feedback_after: Option<i64>,
        sent_feedback: bool,
        /// Send (non-suppressing) feedback every N arrivals.
        feedback_every: Option<u64>,
        /// Send (non-suppressing) feedback from `on_flush`.
        feedback_on_flush: bool,
        seen: u64,
    }

    impl CollectingSink {
        fn new() -> (Self, Arc<Mutex<Vec<Tuple>>>) {
            let collected = Arc::new(Mutex::new(Vec::new()));
            (
                CollectingSink {
                    collected: collected.clone(),
                    punctuations: Arc::new(Mutex::new(Vec::new())),
                    feedback_after: None,
                    sent_feedback: false,
                    feedback_every: None,
                    feedback_on_flush: false,
                    seen: 0,
                },
                collected,
            )
        }

        /// Feedback whose bound (`v >= 1_000_000`) no test stream reaches, so
        /// sending it never changes the data the source produces.
        fn harmless_feedback() -> FeedbackPunctuation {
            FeedbackPunctuation::assumed(
                Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(1_000_000)))])
                    .unwrap(),
                "sink",
            )
        }
    }

    impl Operator for CollectingSink {
        fn name(&self) -> &str {
            "sink"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            0
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            let v = t.int("v").unwrap_or(0);
            self.collected.lock().push(t);
            self.seen += 1;
            if let Some(threshold) = self.feedback_after {
                if !self.sent_feedback && v >= threshold {
                    self.sent_feedback = true;
                    ctx.send_feedback(
                        0,
                        FeedbackPunctuation::assumed(
                            Pattern::for_attributes(
                                schema(),
                                &[("v", PatternItem::Ge(Value::Int(threshold + 10)))],
                            )
                            .unwrap(),
                            "sink",
                        ),
                    );
                }
            }
            if let Some(every) = self.feedback_every {
                if self.seen % every == 0 {
                    ctx.send_feedback(0, Self::harmless_feedback());
                }
            }
            Ok(())
        }

        fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
            if self.feedback_on_flush {
                ctx.send_feedback(0, Self::harmless_feedback());
            }
            Ok(())
        }
        fn on_punctuation(
            &mut self,
            _i: usize,
            p: Punctuation,
            _ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            self.punctuations.lock().push(p);
            Ok(())
        }
    }

    fn linear_plan(n: i64, feedback_after: Option<i64>) -> (QueryPlan, Arc<Mutex<Vec<Tuple>>>) {
        let mut plan = QueryPlan::new().with_page_capacity(8);
        let src = plan.add(CountingSource::new(n, 10));
        let filter = plan.add(EvenFilter);
        let (mut sink, collected) = CollectingSink::new();
        sink.feedback_after = feedback_after;
        let sink = plan.add(sink);
        plan.connect_simple(src, filter).unwrap();
        plan.connect_simple(filter, sink).unwrap();
        (plan, collected)
    }

    #[test]
    fn sync_executor_runs_linear_plan() {
        let (plan, collected) = linear_plan(100, None);
        let report = SyncExecutor::run(plan).unwrap();
        assert_eq!(collected.lock().len(), 50, "even values of 0..100");
        let src = report.operator("source").unwrap();
        assert_eq!(src.tuples_out, 100);
        assert_eq!(src.punctuations_out, 10);
        let sink = report.operator("sink").unwrap();
        assert_eq!(sink.tuples_in, 50);
        assert!(sink.punctuations_in >= 1);
    }

    #[test]
    fn threaded_executor_matches_sync_results() {
        let (plan, collected) = linear_plan(200, None);
        let report = ThreadedExecutor::run(plan).unwrap();
        assert_eq!(collected.lock().len(), 100);
        assert_eq!(report.operator("source").unwrap().tuples_out, 200);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn feedback_travels_upstream_in_sync_executor() {
        let (plan, collected) = linear_plan(1_000, Some(100));
        let report = SyncExecutor::run(plan).unwrap();
        // The sink asks (once it sees v >= 100) that v >= 110 be assumed away; the
        // feedback-unaware filter ignores it, but the source receives nothing —
        // the filter does not relay.  So the full stream still arrives.
        assert_eq!(collected.lock().len(), 500);
        assert_eq!(report.operator("sink").unwrap().feedback_out, 1);
        assert_eq!(report.operator("even").unwrap().feedback_in, 1);
        assert_eq!(
            report.operator("source").unwrap().feedback_in,
            0,
            "unaware operators do not relay"
        );
        assert_eq!(report.total_feedback_dropped(), 0, "delivered (and absorbed), not dropped");
    }

    /// A filter variant that *relays* feedback upstream unchanged.
    struct RelayingFilter;

    impl Operator for RelayingFilter {
        fn name(&self) -> &str {
            "relay"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            ctx.emit(0, t);
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _output: usize,
            feedback: FeedbackPunctuation,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), "relay"));
            Ok(())
        }
    }

    #[test]
    fn relayed_feedback_reaches_the_source_and_is_exploited() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4).with_queue_capacity(4);
            let source = CountingSource::new(5_000, 50);
            let feedback_seen = source.feedback_seen.clone();
            let src = plan.add(source);
            let relay = plan.add(RelayingFilter);
            let (mut sink, collected) = CollectingSink::new();
            sink.feedback_after = Some(50);
            let sink = plan.add(sink);
            plan.connect_simple(src, relay).unwrap();
            plan.connect_simple(relay, sink).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(report.operator("sink").unwrap().feedback_out, 1);
            assert_eq!(report.operator("relay").unwrap().feedback_in, 1);
            assert_eq!(report.operator("source").unwrap().feedback_in, 1);
            assert_eq!(report.total_feedback_dropped(), 0, "every relayed message is delivered");
            assert_eq!(feedback_seen.lock().len(), 1);
            // The source exploited ¬[*, >=60]: far fewer than 5000 tuples arrive.
            let n = collected.lock().len();
            assert!(n < 5_000, "source suppression must reduce output (got {n})");
            assert!(n >= 60, "tuples below the bound must still arrive (got {n})");
        }
    }

    /// The headline regression for the drain protocol: feedback emitted from
    /// a sink's `on_flush` — i.e. *after* every upstream operator has already
    /// finished producing — must still be relayed all the way to the source,
    /// with nothing counted as dropped, in both executors.
    #[test]
    fn flush_feedback_reaches_live_source_in_both_executors() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4).with_queue_capacity(4);
            let source = CountingSource::new(500, 50);
            let feedback_seen = source.feedback_seen.clone();
            let src = plan.add(source);
            let relay = plan.add(RelayingFilter);
            let (mut sink, collected) = CollectingSink::new();
            sink.feedback_on_flush = true;
            let sink = plan.add(sink);
            plan.connect_simple(src, relay).unwrap();
            plan.connect_simple(relay, sink).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(collected.lock().len(), 500, "threaded={threaded}");
            assert_eq!(report.operator("sink").unwrap().feedback_out, 1, "threaded={threaded}");
            assert_eq!(report.operator("relay").unwrap().feedback_in, 1, "threaded={threaded}");
            assert_eq!(
                report.operator("source").unwrap().feedback_in,
                1,
                "flush-time feedback must reach the source (threaded={threaded})"
            );
            assert_eq!(feedback_seen.lock().len(), 1, "threaded={threaded}");
            assert_eq!(report.total_feedback_dropped(), 0, "threaded={threaded}");
        }
    }

    /// Back-pressure stress: tiny pages, a single-page queue bound, and
    /// feedback flowing upstream concurrently with thousands of data pages.
    /// Nothing may be lost in either direction.
    #[test]
    fn threaded_backpressure_with_concurrent_feedback_stress() {
        let mut plan = QueryPlan::new().with_page_capacity(1).with_queue_capacity(1);
        let source = CountingSource::new(5_000, 7);
        let feedback_seen = source.feedback_seen.clone();
        let src = plan.add(source);
        let relay = plan.add(RelayingFilter);
        let (mut sink, collected) = CollectingSink::new();
        sink.feedback_every = Some(250);
        sink.feedback_on_flush = true;
        let sink = plan.add(sink);
        plan.connect_simple(src, relay).unwrap();
        plan.connect_simple(relay, sink).unwrap();

        let report = ThreadedExecutor::run(plan).unwrap();
        assert_eq!(collected.lock().len(), 5_000, "no data lost under back-pressure");
        let sent = report.operator("sink").unwrap().feedback_out;
        assert_eq!(sent, 5_000 / 250 + 1, "cadence feedback plus the flush-time message");
        assert_eq!(report.operator("relay").unwrap().feedback_in, sent);
        assert_eq!(report.operator("source").unwrap().feedback_in, sent);
        assert_eq!(feedback_seen.lock().len(), sent as usize);
        assert_eq!(report.total_feedback_dropped(), 0);
    }

    /// Sink that burns time per tuple so its input queue backs up.
    struct SlowSink {
        collected: Arc<Mutex<Vec<Tuple>>>,
    }

    impl Operator for SlowSink {
        fn name(&self) -> &str {
            "slow"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            0
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
            std::thread::sleep(Duration::from_micros(200));
            self.collected.lock().push(t);
            Ok(())
        }
    }

    /// Regression: `max_queue_depth` used to be populated only by the pooled
    /// executor.  The lifecycle sweep now samples every executor's input
    /// queues, so a threaded run with a single-page queue bound and a slow
    /// consumer must observe a nonzero depth at the sink.
    #[test]
    fn threaded_executor_reports_queue_depth_under_backpressure() {
        let mut plan = QueryPlan::new().with_page_capacity(1).with_queue_capacity(1);
        let src = plan.add(CountingSource::new(300, 0));
        let sink = plan.add(SlowSink { collected: Arc::new(Mutex::new(Vec::new())) });
        plan.connect_simple(src, sink).unwrap();

        let report = ThreadedExecutor::run(plan).unwrap();
        let sink = report.operator("slow").unwrap();
        assert_eq!(sink.tuples_in, 300);
        assert!(
            sink.max_queue_depth >= 1,
            "a slow consumer behind a bounded queue must see queued pages \
             (got {})",
            sink.max_queue_depth
        );
        assert_eq!(report.operator("source").unwrap().max_queue_depth, 0, "sources have no inputs");
    }

    /// Filter that fails after a fixed number of tuples.
    struct FailingFilter {
        after: u64,
        seen: u64,
    }

    impl Operator for FailingFilter {
        fn name(&self) -> &str {
            "failing"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            self.seen += 1;
            if self.seen > self.after {
                return Err(EngineError::ExecutionFailed { detail: "injected failure".into() });
            }
            ctx.emit(0, t);
            Ok(())
        }
    }

    /// An operator failure must shut the whole threaded query down promptly:
    /// shutdown relays upstream (the source stops producing its 100k tuples)
    /// and the error surfaces — the test completing at all proves no thread
    /// deadlocks in the drain protocol.
    #[test]
    fn operator_failure_shuts_both_executors_down() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(2).with_queue_capacity(2);
            let src = plan.add(CountingSource::new(100_000, 0));
            let failing = plan.add(FailingFilter { after: 10, seen: 0 });
            let (sink, _collected) = CollectingSink::new();
            let sink = plan.add(sink);
            plan.connect_simple(src, failing).unwrap();
            plan.connect_simple(failing, sink).unwrap();

            let err = if threaded {
                ThreadedExecutor::run(plan).unwrap_err()
            } else {
                SyncExecutor::run(plan).unwrap_err()
            };
            assert!(
                matches!(err, EngineError::OperatorFailed { ref operator, .. } if operator == "failing"),
                "threaded={threaded}: {err}"
            );
        }
    }

    /// Filter that panics (rather than returning an error) after a fixed
    /// number of tuples.
    struct PanickingFilter {
        after: u64,
        seen: u64,
    }

    impl Operator for PanickingFilter {
        fn name(&self) -> &str {
            "panicky"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            self.seen += 1;
            assert!(self.seen <= self.after, "injected panic");
            ctx.emit(0, t);
            Ok(())
        }
    }

    /// A panicking operator must surface as `OperatorFailed` *naming the
    /// operator* and carrying the panic message — not as an anonymous
    /// "operator thread panicked" execution failure (regression: the join
    /// loop used to discard the panic payload and the thread's identity).
    #[test]
    fn panicking_operator_is_named_in_the_error() {
        let mut plan = QueryPlan::new().with_page_capacity(2).with_queue_capacity(2);
        let src = plan.add(CountingSource::new(100_000, 0));
        let bad = plan.add(PanickingFilter { after: 10, seen: 0 });
        let (sink, _collected) = CollectingSink::new();
        let sink = plan.add(sink);
        plan.connect_simple(src, bad).unwrap();
        plan.connect_simple(bad, sink).unwrap();

        let err = ThreadedExecutor::run(plan).unwrap_err();
        match err {
            EngineError::OperatorFailed { operator, detail } => {
                assert_eq!(operator, "panicky");
                assert!(detail.contains("panicked"), "detail: {detail}");
                assert!(detail.contains("injected panic"), "payload must survive: {detail}");
            }
            other => panic!("expected OperatorFailed, got {other}"),
        }
    }

    /// Sink that names a nonexistent input port when sending feedback — the
    /// one genuinely undeliverable case, which must be *counted*, never
    /// silently ignored.
    struct MisroutedFeedbackSink {
        sent: bool,
    }

    impl Operator for MisroutedFeedbackSink {
        fn name(&self) -> &str {
            "misrouted"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            0
        }
        fn on_tuple(
            &mut self,
            _i: usize,
            _t: Tuple,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            if !self.sent {
                self.sent = true;
                ctx.send_feedback(
                    7,
                    FeedbackPunctuation::assumed(Pattern::all_wildcards(schema()), "misrouted"),
                );
            }
            Ok(())
        }
    }

    #[test]
    fn undeliverable_feedback_is_counted_in_both_executors() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4);
            let src = plan.add(CountingSource::new(20, 0));
            let sink = plan.add(MisroutedFeedbackSink { sent: false });
            plan.connect_simple(src, sink).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            let sink = report.operator("misrouted").unwrap();
            assert_eq!(sink.feedback_dropped, 1, "threaded={threaded}");
            assert_eq!(sink.feedback_out, 0, "threaded={threaded}");
            assert_eq!(report.total_feedback_dropped(), 1, "threaded={threaded}");
        }
    }

    /// A 1→2 router that broadcasts punctuation to both outputs and, per
    /// tuple, alternates the data route; it also broadcasts any feedback it
    /// receives upstream on every input.
    struct BroadcastingRouter {
        next_out: usize,
    }

    impl Operator for BroadcastingRouter {
        fn name(&self) -> &str {
            "router"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            2
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            ctx.emit(self.next_out, t);
            self.next_out = (self.next_out + 1) % 2;
            Ok(())
        }
        fn on_punctuation(
            &mut self,
            _input: usize,
            punctuation: Punctuation,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            ctx.broadcast_punctuation(punctuation);
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _output: usize,
            feedback: FeedbackPunctuation,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            ctx.broadcast_feedback(feedback.relay(feedback.pattern().clone(), "router"));
            Ok(())
        }
    }

    /// Broadcast routing: punctuation reaches *every* downstream consumer
    /// while data follows the per-tuple route, and feedback broadcast
    /// upstream reaches the source — on both executors, with nothing dropped.
    #[test]
    fn broadcasts_reach_every_connected_endpoint() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4).with_queue_capacity(4);
            let source = CountingSource::new(100, 10);
            let feedback_seen = source.feedback_seen.clone();
            let src = plan.add(source);
            let router = plan.add(BroadcastingRouter { next_out: 0 });
            let (mut sink_a, collected_a) = CollectingSink::new();
            sink_a.feedback_on_flush = true;
            let (sink_b, collected_b) = CollectingSink::new();
            let punct_b = sink_b.punctuations.clone();
            let sink_a = plan.add(sink_a);
            let sink_b = plan.add(sink_b);
            plan.connect_simple(src, router).unwrap();
            plan.connect(router, 0, sink_a, 0).unwrap();
            plan.connect(router, 1, sink_b, 0).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(
                collected_a.lock().len() + collected_b.lock().len(),
                100,
                "data is routed, not duplicated (threaded={threaded})"
            );
            assert_eq!(
                report.operator("router").unwrap().punctuations_out,
                2 * report.operator("router").unwrap().punctuations_in,
                "punctuation is broadcast to both outputs (threaded={threaded})"
            );
            assert!(!punct_b.lock().is_empty(), "threaded={threaded}");
            assert_eq!(
                feedback_seen.lock().len(),
                1,
                "flush-time feedback, broadcast upstream, reaches the source \
                 (threaded={threaded})"
            );
            assert_eq!(report.total_feedback_dropped(), 0, "threaded={threaded}");
        }
    }

    #[test]
    fn invalid_plans_are_rejected_by_both_executors() {
        let mut plan = QueryPlan::new();
        plan.add(EvenFilter); // input never connected
        assert!(matches!(SyncExecutor::run(plan), Err(EngineError::InvalidPlan { .. })));

        let mut plan = QueryPlan::new();
        plan.add(EvenFilter);
        assert!(matches!(ThreadedExecutor::run(plan), Err(EngineError::InvalidPlan { .. })));
    }

    #[test]
    fn execution_report_helpers() {
        let (plan, _collected) = linear_plan(20, None);
        let report = SyncExecutor::run(plan).unwrap();
        assert!(report.operator("missing").is_none());
        assert!(report.total_tuples_out() >= 20);
        assert_eq!(report.total_feedback(), 0);
    }
}
