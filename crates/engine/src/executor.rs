//! Plan execution.
//!
//! Two executors run the same [`QueryPlan`]s and the same operator code:
//!
//! * [`ThreadedExecutor`] — NiagaraST's model: one OS thread per operator,
//!   bounded page queues between them (back-pressure), and an out-of-band
//!   control channel per connection that is drained with priority before data
//!   is processed.  This is the executor the paper's experiments correspond
//!   to: pipelined, inter-operator parallel, timing-sensitive.
//! * [`SyncExecutor`] — a deterministic single-threaded scheduler that
//!   round-robins operators in topological order.  It produces bit-identical
//!   results run-to-run and is what most unit and integration tests use.
//!
//! Both deliver feedback punctuation *against* the data flow: an operator
//! calls [`OperatorContext::send_feedback`] naming one of its *input* ports,
//! and the executor hands the message to the operator attached upstream of
//! that port, invoking its [`Operator::on_feedback`] callback with high
//! priority.

use crate::control::ControlMessage;
use crate::error::{EngineError, EngineResult};
use crate::metrics::OperatorMetrics;
use crate::operator::{Operator, OperatorContext, SourceState, StreamItem};
use crate::page::{Page, PageBuilder};
use crate::plan::{Edge, NodeId, QueryPlan};
use crate::queue::{ConsumerEnd, DataQueue, ProducerEnd, QueueMessage};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The result of executing a plan: wall-clock time plus per-operator metrics.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Total wall-clock execution time.
    pub elapsed: Duration,
    /// Per-operator metrics, in plan node order.
    pub metrics: Vec<OperatorMetrics>,
}

impl ExecutionReport {
    /// Metrics for the first operator with the given name, if any.
    pub fn operator(&self, name: &str) -> Option<&OperatorMetrics> {
        self.metrics.iter().find(|m| m.operator == name)
    }

    /// Sum of tuples emitted by all operators.
    pub fn total_tuples_out(&self) -> u64 {
        self.metrics.iter().map(|m| m.tuples_out).sum()
    }

    /// Sum of feedback messages sent by all operators.
    pub fn total_feedback(&self) -> u64 {
        self.metrics.iter().map(|m| m.feedback_out).sum()
    }
}

// ---------------------------------------------------------------------------
// Synchronous (deterministic) executor
// ---------------------------------------------------------------------------

/// Deterministic single-threaded executor.
pub struct SyncExecutor;

struct SyncEdgeState {
    edge: Edge,
    builder: PageBuilder,
    queue: VecDeque<Page>,
    eos: bool,
    control: VecDeque<ControlMessage>,
}

impl SyncExecutor {
    /// Runs the plan to completion.
    pub fn run(mut plan: QueryPlan) -> EngineResult<ExecutionReport> {
        plan.validate()?;
        let started = Instant::now();
        let order = plan.topological_order();
        let page_capacity = plan.page_capacity;

        let mut edges: Vec<SyncEdgeState> = plan
            .edges
            .iter()
            .map(|e| SyncEdgeState {
                edge: *e,
                builder: PageBuilder::new(page_capacity),
                queue: VecDeque::new(),
                eos: false,
                control: VecDeque::new(),
            })
            .collect();

        let node_count = plan.nodes.len();
        let mut metrics: Vec<OperatorMetrics> =
            plan.nodes.iter().map(|n| OperatorMetrics::new(n.name.clone())).collect();
        let mut done = vec![false; node_count];
        let mut exhausted = vec![false; node_count];
        let mut ctx = OperatorContext::new();

        loop {
            let mut activity = false;

            // 1. Deliver pending upstream control messages (high priority).
            for e in 0..edges.len() {
                while let Some(msg) = edges[e].control.pop_front() {
                    activity = true;
                    let producer = edges[e].edge.from.0;
                    let port = edges[e].edge.from_port;
                    if done[producer] {
                        continue;
                    }
                    let op = &mut plan.nodes[producer].operator;
                    match msg {
                        ControlMessage::Feedback(fb) => {
                            metrics[producer].feedback_in += 1;
                            op.on_feedback(port, fb, &mut ctx)
                                .map_err(|err| wrap(&plan, producer, err))?;
                        }
                        ControlMessage::RequestResults => {
                            op.on_request_results(port, &mut ctx)
                                .map_err(|err| wrap(&plan, producer, err))?;
                        }
                        ControlMessage::Shutdown | ControlMessage::EndOfStream => {}
                    }
                    route_sync(&mut ctx, producer, &mut edges, &mut metrics);
                }
            }

            // 2. Step every node once, in topological order.
            for &NodeId(n) in &order {
                if done[n] {
                    continue;
                }
                let is_source = plan.nodes[n].inputs == 0;
                if is_source {
                    if !exhausted[n] {
                        let timer = Instant::now();
                        let state = plan.nodes[n]
                            .operator
                            .poll_source(&mut ctx)
                            .map_err(|err| wrap(&plan, n, err))?;
                        metrics[n].busy += timer.elapsed();
                        route_sync(&mut ctx, n, &mut edges, &mut metrics);
                        match state {
                            SourceState::Producing => activity = true,
                            SourceState::Exhausted | SourceState::NotASource => {
                                exhausted[n] = true;
                                activity = true;
                            }
                        }
                    }
                    if exhausted[n] {
                        finish_sync(&mut plan, n, &mut edges, &mut metrics, &mut ctx, &mut done)?;
                        activity = true;
                    }
                    continue;
                }

                // Consume at most one page per input this round.
                let mut consumed = false;
                for e in 0..edges.len() {
                    if edges[e].edge.to.0 != n {
                        continue;
                    }
                    if let Some(page) = edges[e].queue.pop_front() {
                        consumed = true;
                        activity = true;
                        metrics[n].pages_in += 1;
                        let port = edges[e].edge.to_port;
                        let timer = Instant::now();
                        for item in page.into_items() {
                            match item {
                                StreamItem::Tuple(t) => {
                                    metrics[n].tuples_in += 1;
                                    plan.nodes[n]
                                        .operator
                                        .on_tuple(port, t, &mut ctx)
                                        .map_err(|err| wrap(&plan, n, err))?;
                                }
                                StreamItem::Punctuation(p) => {
                                    metrics[n].punctuations_in += 1;
                                    plan.nodes[n]
                                        .operator
                                        .on_punctuation(port, p, &mut ctx)
                                        .map_err(|err| wrap(&plan, n, err))?;
                                }
                            }
                        }
                        metrics[n].busy += timer.elapsed();
                        route_sync(&mut ctx, n, &mut edges, &mut metrics);
                    }
                }

                // End-of-stream: all incoming edges exhausted and drained.
                if !consumed {
                    let inputs_done = edges
                        .iter()
                        .filter(|e| e.edge.to.0 == n)
                        .all(|e| e.eos && e.queue.is_empty());
                    if inputs_done {
                        finish_sync(&mut plan, n, &mut edges, &mut metrics, &mut ctx, &mut done)?;
                        activity = true;
                    }
                }
            }

            if done.iter().all(|d| *d) {
                break;
            }
            if !activity {
                return Err(EngineError::ExecutionFailed {
                    detail: "execution stalled: no operator made progress".into(),
                });
            }
        }

        // Fold in feedback stats.
        for (n, node) in plan.nodes.iter().enumerate() {
            if let Some(stats) = node.operator.feedback_stats() {
                metrics[n].feedback = stats;
            }
        }

        Ok(ExecutionReport { elapsed: started.elapsed(), metrics })
    }
}

fn wrap(plan: &QueryPlan, node: usize, err: EngineError) -> EngineError {
    EngineError::OperatorFailed { operator: plan.nodes[node].name.clone(), detail: err.to_string() }
}

/// Routes one node's buffered emissions and feedback into the sync edge state.
fn route_sync(
    ctx: &mut OperatorContext,
    node: usize,
    edges: &mut [SyncEdgeState],
    metrics: &mut [OperatorMetrics],
) {
    for (port, item) in ctx.take_emitted() {
        let Some(edge) =
            edges.iter_mut().find(|e| e.edge.from.0 == node && e.edge.from_port == port)
        else {
            // Unconnected output (sink side-channel): count and drop.
            match item {
                StreamItem::Tuple(_) => metrics[node].tuples_out += 1,
                StreamItem::Punctuation(_) => metrics[node].punctuations_out += 1,
            }
            continue;
        };
        match item {
            StreamItem::Tuple(t) => {
                metrics[node].tuples_out += 1;
                if let Some(page) = edge.builder.push_tuple(t) {
                    metrics[node].pages_out += 1;
                    edge.queue.push_back(page);
                }
            }
            StreamItem::Punctuation(p) => {
                metrics[node].punctuations_out += 1;
                let page = edge.builder.push_punctuation(p);
                metrics[node].pages_out += 1;
                edge.queue.push_back(page);
            }
        }
    }
    for (input, fb) in ctx.take_feedback() {
        if let Some(edge) =
            edges.iter_mut().find(|e| e.edge.to.0 == node && e.edge.to_port == input)
        {
            metrics[node].feedback_out += 1;
            edge.control.push_back(ControlMessage::Feedback(fb));
        }
    }
    for input in ctx.take_result_requests() {
        if let Some(edge) =
            edges.iter_mut().find(|e| e.edge.to.0 == node && e.edge.to_port == input)
        {
            edge.control.push_back(ControlMessage::RequestResults);
        }
    }
}

/// Flushes a finished node and marks end-of-stream on its outgoing edges.
fn finish_sync(
    plan: &mut QueryPlan,
    node: usize,
    edges: &mut [SyncEdgeState],
    metrics: &mut [OperatorMetrics],
    ctx: &mut OperatorContext,
    done: &mut [bool],
) -> EngineResult<()> {
    if done[node] {
        return Ok(());
    }
    let timer = Instant::now();
    plan.nodes[node].operator.on_flush(ctx).map_err(|err| wrap(plan, node, err))?;
    metrics[node].busy += timer.elapsed();
    route_sync(ctx, node, edges, metrics);
    for edge in edges.iter_mut().filter(|e| e.edge.from.0 == node) {
        if let Some(page) = edge.builder.flush() {
            metrics[node].pages_out += 1;
            edge.queue.push_back(page);
        }
        edge.eos = true;
    }
    done[node] = true;
    Ok(())
}

// ---------------------------------------------------------------------------
// Threaded (NiagaraST-style) executor
// ---------------------------------------------------------------------------

/// One OS thread per operator, bounded page queues, out-of-band control.
pub struct ThreadedExecutor;

struct ThreadedNode {
    name: String,
    operator: Box<dyn Operator>,
    /// (input port, consumer endpoint of the incoming connection)
    inputs: Vec<(usize, ConsumerEnd)>,
    /// (output port, producer endpoint of the outgoing connection)
    outputs: Vec<(usize, ProducerEnd)>,
    page_capacity: usize,
}

impl ThreadedExecutor {
    /// How long an idle operator thread sleeps before re-polling its inputs.
    const IDLE_SLEEP: Duration = Duration::from_micros(50);

    /// Runs the plan to completion, one thread per operator.
    pub fn run(mut plan: QueryPlan) -> EngineResult<ExecutionReport> {
        plan.validate()?;
        let started = Instant::now();
        let page_capacity = plan.page_capacity;
        let queue_capacity = plan.queue_capacity;

        // Build one connection per edge.
        let mut producer_ends: Vec<Option<ProducerEnd>> = Vec::new();
        let mut consumer_ends: Vec<Option<ConsumerEnd>> = Vec::new();
        for _ in &plan.edges {
            let (p, c) = DataQueue::connection(queue_capacity);
            producer_ends.push(Some(p));
            consumer_ends.push(Some(c));
        }

        // Assemble per-node runtimes.
        let mut runtimes: Vec<ThreadedNode> = Vec::with_capacity(plan.nodes.len());
        let edges = plan.edges.clone();
        for (idx, node) in plan.nodes.drain(..).enumerate() {
            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            for (e_idx, e) in edges.iter().enumerate() {
                if e.to.0 == idx {
                    inputs.push((
                        e.to_port,
                        consumer_ends[e_idx].take().expect("consumer end taken once"),
                    ));
                }
                if e.from.0 == idx {
                    outputs.push((
                        e.from_port,
                        producer_ends[e_idx].take().expect("producer end taken once"),
                    ));
                }
            }
            runtimes.push(ThreadedNode {
                name: node.name,
                operator: node.operator,
                inputs,
                outputs,
                page_capacity,
            });
        }

        // Run each node on its own thread.
        let handles: Vec<_> = runtimes
            .into_iter()
            .map(|node| std::thread::spawn(move || run_threaded_node(node)))
            .collect();

        let mut metrics = Vec::with_capacity(handles.len());
        let mut first_error: Option<EngineError> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(m)) => metrics.push(m),
                Ok(Err(e)) => first_error = first_error.or(Some(e)),
                Err(_) => {
                    first_error = first_error.or(Some(EngineError::ExecutionFailed {
                        detail: "operator thread panicked".into(),
                    }))
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(ExecutionReport { elapsed: started.elapsed(), metrics })
    }
}

fn run_threaded_node(mut node: ThreadedNode) -> Result<OperatorMetrics, EngineError> {
    let mut metrics = OperatorMetrics::new(node.name.clone());
    let mut ctx = OperatorContext::new();
    let mut builders: Vec<(usize, PageBuilder)> = node
        .outputs
        .iter()
        .map(|(port, _)| (*port, PageBuilder::new(node.page_capacity)))
        .collect();
    let is_source = node.inputs.is_empty();
    let mut open: Vec<bool> = vec![true; node.inputs.len()];
    let mut shutdown = false;

    let wrap = |name: &str, err: EngineError| EngineError::OperatorFailed {
        operator: name.to_string(),
        detail: err.to_string(),
    };

    loop {
        // 1. Control first (feedback from downstream), with priority.
        for (port, producer) in &node.outputs {
            for msg in producer.drain_control() {
                match msg {
                    ControlMessage::Feedback(fb) => {
                        metrics.feedback_in += 1;
                        node.operator
                            .on_feedback(*port, fb, &mut ctx)
                            .map_err(|e| wrap(&node.name, e))?;
                    }
                    ControlMessage::RequestResults => {
                        node.operator
                            .on_request_results(*port, &mut ctx)
                            .map_err(|e| wrap(&node.name, e))?;
                    }
                    ControlMessage::Shutdown => shutdown = true,
                    ControlMessage::EndOfStream => {}
                }
            }
        }
        route_threaded(&mut ctx, &node, &mut builders, &mut metrics);
        if shutdown {
            break;
        }

        // 2. Data (or source stepping).
        if is_source {
            let timer = Instant::now();
            let state = node.operator.poll_source(&mut ctx).map_err(|e| wrap(&node.name, e))?;
            metrics.busy += timer.elapsed();
            route_threaded(&mut ctx, &node, &mut builders, &mut metrics);
            match state {
                SourceState::Producing => continue,
                SourceState::Exhausted | SourceState::NotASource => break,
            }
        }

        let mut received = false;
        for (i, (port, consumer)) in node.inputs.iter().enumerate() {
            if !open[i] {
                continue;
            }
            match consumer.try_recv() {
                Some(QueueMessage::Page(page)) => {
                    received = true;
                    metrics.pages_in += 1;
                    let timer = Instant::now();
                    for item in page.into_items() {
                        match item {
                            StreamItem::Tuple(t) => {
                                metrics.tuples_in += 1;
                                node.operator
                                    .on_tuple(*port, t, &mut ctx)
                                    .map_err(|e| wrap(&node.name, e))?;
                            }
                            StreamItem::Punctuation(p) => {
                                metrics.punctuations_in += 1;
                                node.operator
                                    .on_punctuation(*port, p, &mut ctx)
                                    .map_err(|e| wrap(&node.name, e))?;
                            }
                        }
                    }
                    metrics.busy += timer.elapsed();
                    route_threaded(&mut ctx, &node, &mut builders, &mut metrics);
                }
                Some(QueueMessage::EndOfStream) => {
                    received = true;
                    open[i] = false;
                }
                None => {}
            }
        }
        if open.iter().all(|o| !*o) {
            break;
        }
        if !received {
            std::thread::sleep(ThreadedExecutor::IDLE_SLEEP);
        }
    }

    // Final flush.
    let timer = Instant::now();
    node.operator.on_flush(&mut ctx).map_err(|e| wrap(&node.name, e))?;
    metrics.busy += timer.elapsed();
    route_threaded(&mut ctx, &node, &mut builders, &mut metrics);
    for (port, builder) in &mut builders {
        if let Some(page) = builder.flush() {
            metrics.pages_out += 1;
            if let Some((_, producer)) = node.outputs.iter().find(|(p, _)| p == port) {
                producer.send_page(page);
            }
        }
    }
    for (_, producer) in &node.outputs {
        producer.send_end_of_stream();
    }
    if let Some(stats) = node.operator.feedback_stats() {
        metrics.feedback = stats;
    }
    Ok(metrics)
}

fn route_threaded(
    ctx: &mut OperatorContext,
    node: &ThreadedNode,
    builders: &mut [(usize, PageBuilder)],
    metrics: &mut OperatorMetrics,
) {
    for (port, item) in ctx.take_emitted() {
        let producer = node.outputs.iter().find(|(p, _)| *p == port).map(|(_, prod)| prod);
        let builder = builders.iter_mut().find(|(p, _)| *p == port).map(|(_, b)| b);
        match (producer, builder) {
            (Some(producer), Some(builder)) => match item {
                StreamItem::Tuple(t) => {
                    metrics.tuples_out += 1;
                    if let Some(page) = builder.push_tuple(t) {
                        metrics.pages_out += 1;
                        producer.send_page(page);
                    }
                }
                StreamItem::Punctuation(p) => {
                    metrics.punctuations_out += 1;
                    let page = builder.push_punctuation(p);
                    metrics.pages_out += 1;
                    producer.send_page(page);
                }
            },
            _ => match item {
                // Unconnected output: count and drop.
                StreamItem::Tuple(_) => metrics.tuples_out += 1,
                StreamItem::Punctuation(_) => metrics.punctuations_out += 1,
            },
        }
    }
    for (input, fb) in ctx.take_feedback() {
        if let Some((_, consumer)) = node.inputs.iter().find(|(p, _)| *p == input) {
            metrics.feedback_out += 1;
            consumer.send_control(ControlMessage::Feedback(fb));
        }
    }
    for input in ctx.take_result_requests() {
        if let Some((_, consumer)) = node.inputs.iter().find(|(p, _)| *p == input) {
            consumer.send_control(ControlMessage::RequestResults);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_feedback::FeedbackPunctuation;
    use dsms_punctuation::{Pattern, PatternItem, Punctuation};
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Tuple, Value};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(ts: i64, v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(v)])
    }

    /// Source emitting `0..n` with punctuation every `punct_every` tuples.
    struct CountingSource {
        n: i64,
        next: i64,
        punct_every: i64,
        suppressed_below: Option<i64>,
        feedback_seen: Arc<Mutex<Vec<FeedbackPunctuation>>>,
    }

    impl CountingSource {
        fn new(n: i64, punct_every: i64) -> Self {
            CountingSource {
                n,
                next: 0,
                punct_every,
                suppressed_below: None,
                feedback_seen: Arc::new(Mutex::new(Vec::new())),
            }
        }
    }

    impl Operator for CountingSource {
        fn name(&self) -> &str {
            "source"
        }
        fn inputs(&self) -> usize {
            0
        }
        fn on_tuple(&mut self, _i: usize, _t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _output: usize,
            feedback: FeedbackPunctuation,
            _ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            // Exploit "v >= k is assumed away" by remembering the bound.
            if let Ok(PatternItem::Ge(Value::Int(k))) = feedback.pattern().item_for("v").cloned() {
                self.suppressed_below = Some(k);
            }
            self.feedback_seen.lock().push(feedback);
            Ok(())
        }
        fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
            if self.next >= self.n {
                return Ok(SourceState::Exhausted);
            }
            let v = self.next;
            self.next += 1;
            let skip = self.suppressed_below.map(|k| v >= k).unwrap_or(false);
            if !skip {
                ctx.emit(0, tuple(v, v));
            }
            if self.punct_every > 0 && v % self.punct_every == self.punct_every - 1 {
                ctx.emit_punctuation(
                    0,
                    Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(v)).unwrap(),
                );
            }
            Ok(SourceState::Producing)
        }
    }

    /// Filter keeping even values, forwarding punctuation.
    struct EvenFilter;

    impl Operator for EvenFilter {
        fn name(&self) -> &str {
            "even"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            if t.int("v").unwrap_or(0) % 2 == 0 {
                ctx.emit(0, t);
            }
            Ok(())
        }
    }

    /// Sink collecting tuples; optionally sends feedback after a threshold.
    struct CollectingSink {
        collected: Arc<Mutex<Vec<Tuple>>>,
        punctuations: Arc<Mutex<Vec<Punctuation>>>,
        feedback_after: Option<i64>,
        sent_feedback: bool,
    }

    impl CollectingSink {
        fn new() -> (Self, Arc<Mutex<Vec<Tuple>>>) {
            let collected = Arc::new(Mutex::new(Vec::new()));
            (
                CollectingSink {
                    collected: collected.clone(),
                    punctuations: Arc::new(Mutex::new(Vec::new())),
                    feedback_after: None,
                    sent_feedback: false,
                },
                collected,
            )
        }
    }

    impl Operator for CollectingSink {
        fn name(&self) -> &str {
            "sink"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            0
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            let v = t.int("v").unwrap_or(0);
            self.collected.lock().push(t);
            if let Some(threshold) = self.feedback_after {
                if !self.sent_feedback && v >= threshold {
                    self.sent_feedback = true;
                    ctx.send_feedback(
                        0,
                        FeedbackPunctuation::assumed(
                            Pattern::for_attributes(
                                schema(),
                                &[("v", PatternItem::Ge(Value::Int(threshold + 10)))],
                            )
                            .unwrap(),
                            "sink",
                        ),
                    );
                }
            }
            Ok(())
        }
        fn on_punctuation(
            &mut self,
            _i: usize,
            p: Punctuation,
            _ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            self.punctuations.lock().push(p);
            Ok(())
        }
    }

    fn linear_plan(n: i64, feedback_after: Option<i64>) -> (QueryPlan, Arc<Mutex<Vec<Tuple>>>) {
        let mut plan = QueryPlan::new().with_page_capacity(8);
        let src = plan.add(CountingSource::new(n, 10));
        let filter = plan.add(EvenFilter);
        let (mut sink, collected) = CollectingSink::new();
        sink.feedback_after = feedback_after;
        let sink = plan.add(sink);
        plan.connect_simple(src, filter).unwrap();
        plan.connect_simple(filter, sink).unwrap();
        (plan, collected)
    }

    #[test]
    fn sync_executor_runs_linear_plan() {
        let (plan, collected) = linear_plan(100, None);
        let report = SyncExecutor::run(plan).unwrap();
        assert_eq!(collected.lock().len(), 50, "even values of 0..100");
        let src = report.operator("source").unwrap();
        assert_eq!(src.tuples_out, 100);
        assert_eq!(src.punctuations_out, 10);
        let sink = report.operator("sink").unwrap();
        assert_eq!(sink.tuples_in, 50);
        assert!(sink.punctuations_in >= 1);
    }

    #[test]
    fn threaded_executor_matches_sync_results() {
        let (plan, collected) = linear_plan(200, None);
        let report = ThreadedExecutor::run(plan).unwrap();
        assert_eq!(collected.lock().len(), 100);
        assert_eq!(report.operator("source").unwrap().tuples_out, 200);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn feedback_travels_upstream_in_sync_executor() {
        let (plan, collected) = linear_plan(1_000, Some(100));
        let report = SyncExecutor::run(plan).unwrap();
        // The sink asks (once it sees v >= 100) that v >= 110 be assumed away; the
        // feedback-unaware filter ignores it, but the source receives nothing —
        // the filter does not relay.  So the full stream still arrives.
        assert_eq!(collected.lock().len(), 500);
        assert_eq!(report.operator("sink").unwrap().feedback_out, 1);
        assert_eq!(report.operator("even").unwrap().feedback_in, 1);
        assert_eq!(
            report.operator("source").unwrap().feedback_in,
            0,
            "unaware operators do not relay"
        );
    }

    /// A filter variant that *relays* feedback upstream unchanged.
    struct RelayingFilter;

    impl Operator for RelayingFilter {
        fn name(&self) -> &str {
            "relay"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            ctx.emit(0, t);
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _output: usize,
            feedback: FeedbackPunctuation,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), "relay"));
            Ok(())
        }
    }

    #[test]
    fn relayed_feedback_reaches_the_source_and_is_exploited() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4).with_queue_capacity(4);
            let source = CountingSource::new(5_000, 50);
            let feedback_seen = source.feedback_seen.clone();
            let src = plan.add(source);
            let relay = plan.add(RelayingFilter);
            let (mut sink, collected) = CollectingSink::new();
            sink.feedback_after = Some(50);
            let sink = plan.add(sink);
            plan.connect_simple(src, relay).unwrap();
            plan.connect_simple(relay, sink).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(report.operator("sink").unwrap().feedback_out, 1);
            assert_eq!(report.operator("relay").unwrap().feedback_in, 1);
            assert_eq!(report.operator("source").unwrap().feedback_in, 1);
            assert_eq!(feedback_seen.lock().len(), 1);
            // The source exploited ¬[*, >=60]: far fewer than 5000 tuples arrive.
            let n = collected.lock().len();
            assert!(n < 5_000, "source suppression must reduce output (got {n})");
            assert!(n >= 60, "tuples below the bound must still arrive (got {n})");
        }
    }

    #[test]
    fn invalid_plans_are_rejected_by_both_executors() {
        let mut plan = QueryPlan::new();
        plan.add(EvenFilter); // input never connected
        assert!(matches!(SyncExecutor::run(plan), Err(EngineError::InvalidPlan { .. })));

        let mut plan = QueryPlan::new();
        plan.add(EvenFilter);
        assert!(matches!(ThreadedExecutor::run(plan), Err(EngineError::InvalidPlan { .. })));
    }

    #[test]
    fn execution_report_helpers() {
        let (plan, _collected) = linear_plan(20, None);
        let report = SyncExecutor::run(plan).unwrap();
        assert!(report.operator("missing").is_none());
        assert!(report.total_tuples_out() >= 20);
        assert_eq!(report.total_feedback(), 0);
    }
}
