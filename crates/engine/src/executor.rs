//! Plan execution.
//!
//! Two executors run the same [`QueryPlan`]s and the same operator code:
//!
//! * [`ThreadedExecutor`] — NiagaraST's model made event-driven: one OS
//!   thread per operator, bounded page queues between them (back-pressure),
//!   and an out-of-band control channel per connection that is drained with
//!   priority before data is processed.  Idle threads *block* on a
//!   condvar-based multi-receiver wait spanning every input data queue and
//!   every downstream control channel — there is no sleep-polling anywhere in
//!   the runtime, so an idle operator costs zero CPU and reacts to the next
//!   page or feedback message the moment it arrives.
//! * [`SyncExecutor`] — a deterministic single-threaded scheduler that
//!   round-robins operators in topological order.  It produces bit-identical
//!   results run-to-run and is what most unit and integration tests use.
//!
//! Both deliver feedback punctuation *against* the data flow: an operator
//! calls [`OperatorContext::send_feedback`] naming one of its *input* ports,
//! and the executor hands the message to the operator attached upstream of
//! that port, invoking its [`Operator::on_feedback`] callback with high
//! priority.  Data moves between operators page-at-a-time through the
//! [`Operator::on_page`] batch hook, and routing uses precomputed
//! port-to-edge tables rather than scanning the edge list per item.
//!
//! # The drain protocol
//!
//! Feedback is often produced exactly at end-of-stream — a sink's
//! [`Operator::on_flush`] summarising what it no longer needs — which is the
//! moment a naive runtime has already torn down the upstream threads.  The
//! threaded executor therefore ends every operator in three phases:
//!
//! 1. **flush** — `on_flush`, remaining partial pages, then data
//!    end-of-stream to every consumer;
//! 2. **drain** — the thread stays alive, blocked on its downstream control
//!    channels, processing feedback and result requests (and relaying
//!    feedback further upstream) until *every* consumer has sent its control
//!    end-of-stream handshake (or hung up);
//! 3. **release** — it sends the control end-of-stream handshake on each of
//!    its own input connections, releasing its upstream producers from their
//!    drain phases in turn, and exits.
//!
//! Teardown therefore propagates sink → source, and feedback sent at or
//! after end-of-stream still reaches a live upstream operator.  The sync
//! executor keeps every operator alive for the whole run and delivers queued
//! control even to operators that have already flushed, giving the same
//! guarantee.  Anything *genuinely* undeliverable (e.g. feedback named on an
//! unconnected input port, or a connection whose upstream thread died after
//! a failure) is counted in [`OperatorMetrics::feedback_dropped`] rather
//! than dropped silently.  When an operator fails, the threaded executor
//! sends [`ControlMessage::Shutdown`] upstream so producers stop generating
//! data nobody will read; the shutdown relays source-ward and the query
//! tears down promptly.

use crate::control::ControlMessage;
use crate::error::{EngineError, EngineResult};
use crate::metrics::OperatorMetrics;
use crate::operator::{Operator, OperatorContext, SourceState, StreamItem};
use crate::page::{Page, PageBuilder};
use crate::plan::{Edge, Node, NodeId, QueryPlan};
use crate::queue::{
    wait_any, ConsumerEnd, ControlPoll, DataPoll, DataQueue, ProducerEnd, QueueMessage,
};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The result of executing a plan: wall-clock time plus per-operator metrics.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Total wall-clock execution time.
    pub elapsed: Duration,
    /// Per-operator metrics, in plan node order.
    pub metrics: Vec<OperatorMetrics>,
}

impl ExecutionReport {
    /// Metrics for the first operator with the given name, if any.
    pub fn operator(&self, name: &str) -> Option<&OperatorMetrics> {
        self.metrics.iter().find(|m| m.operator == name)
    }

    /// Sum of tuples emitted by all operators.
    pub fn total_tuples_out(&self) -> u64 {
        self.metrics.iter().map(|m| m.tuples_out).sum()
    }

    /// Sum of feedback messages sent by all operators.
    pub fn total_feedback(&self) -> u64 {
        self.metrics.iter().map(|m| m.feedback_out).sum()
    }

    /// Sum of feedback messages that could not be delivered (see
    /// [`OperatorMetrics::feedback_dropped`]).  A healthy run reports 0.
    pub fn total_feedback_dropped(&self) -> u64 {
        self.metrics.iter().map(|m| m.feedback_dropped).sum()
    }
}

// ---------------------------------------------------------------------------
// Routing tables
// ---------------------------------------------------------------------------

/// Precomputed port → edge lookup tables, replacing the O(edges) scans the
/// routers previously performed for every emitted item.
struct RoutingTable {
    /// node → output port → edge index.
    outputs: Vec<Vec<Option<usize>>>,
    /// node → input port → edge index.
    inputs: Vec<Vec<Option<usize>>>,
}

impl RoutingTable {
    fn build(nodes: &[Node], edges: &[Edge]) -> Self {
        let mut outputs: Vec<Vec<Option<usize>>> =
            nodes.iter().map(|n| vec![None; n.outputs]).collect();
        let mut inputs: Vec<Vec<Option<usize>>> =
            nodes.iter().map(|n| vec![None; n.inputs]).collect();
        for (idx, e) in edges.iter().enumerate() {
            if let Some(slot) = outputs[e.from.0].get_mut(e.from_port) {
                *slot = Some(idx);
            }
            if let Some(slot) = inputs[e.to.0].get_mut(e.to_port) {
                *slot = Some(idx);
            }
        }
        RoutingTable { outputs, inputs }
    }

    /// The edge attached to an output port, if any (out-of-range ports —
    /// possible at runtime, operators name ports freely — map to `None`).
    fn out_edge(&self, node: usize, port: usize) -> Option<usize> {
        self.outputs[node].get(port).copied().flatten()
    }

    /// The edge attached to an input port, if any.
    fn in_edge(&self, node: usize, port: usize) -> Option<usize> {
        self.inputs[node].get(port).copied().flatten()
    }
}

// ---------------------------------------------------------------------------
// Synchronous (deterministic) executor
// ---------------------------------------------------------------------------

/// Deterministic single-threaded executor.
pub struct SyncExecutor;

struct SyncEdgeState {
    edge: Edge,
    builder: PageBuilder,
    queue: VecDeque<Page>,
    eos: bool,
    control: VecDeque<ControlMessage>,
}

impl SyncExecutor {
    /// Runs the plan to completion.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::{Operator, OperatorContext, QueryPlan, SourceState, SyncExecutor};
    /// # use dsms_engine::EngineResult;
    /// # use dsms_types::{DataType, Schema, Tuple, Value};
    /// # struct Nums(i64);
    /// # impl Operator for Nums {
    /// #     fn name(&self) -> &str { "nums" }
    /// #     fn inputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> { Ok(()) }
    /// #     fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
    /// #         if self.0 >= 10 { return Ok(SourceState::Exhausted); }
    /// #         let schema = Schema::shared(&[("v", DataType::Int)]);
    /// #         ctx.emit(0, Tuple::new(schema, vec![Value::Int(self.0)]));
    /// #         self.0 += 1;
    /// #         Ok(SourceState::Producing)
    /// #     }
    /// # }
    /// # struct Count(u64);
    /// # impl Operator for Count {
    /// #     fn name(&self) -> &str { "count" }
    /// #     fn inputs(&self) -> usize { 1 }
    /// #     fn outputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
    /// #         self.0 += 1;
    /// #         Ok(())
    /// #     }
    /// # }
    ///
    /// // `Nums` emits 0..10; `Count` tallies arrivals (implementations hidden).
    /// let mut plan = QueryPlan::new();
    /// let source = plan.add(Nums(0));
    /// let sink = plan.add(Count(0));
    /// plan.connect_simple(source, sink)?;
    ///
    /// let report = SyncExecutor::run(plan)?;
    /// assert_eq!(report.operator("nums").unwrap().tuples_out, 10);
    /// assert_eq!(report.operator("count").unwrap().tuples_in, 10);
    /// assert_eq!(report.total_feedback_dropped(), 0);
    /// # Ok::<(), dsms_engine::EngineError>(())
    /// ```
    pub fn run(mut plan: QueryPlan) -> EngineResult<ExecutionReport> {
        plan.validate()?;
        let started = Instant::now();
        let order = plan.topological_order();
        let page_capacity = plan.page_capacity;
        let routes = RoutingTable::build(&plan.nodes, &plan.edges);

        let mut edges: Vec<SyncEdgeState> = plan
            .edges
            .iter()
            .map(|e| SyncEdgeState {
                edge: *e,
                builder: PageBuilder::new(page_capacity),
                queue: VecDeque::new(),
                eos: false,
                control: VecDeque::new(),
            })
            .collect();

        let node_count = plan.nodes.len();
        let mut metrics: Vec<OperatorMetrics> =
            plan.nodes.iter().map(|n| OperatorMetrics::new(n.name.clone())).collect();
        let mut done = vec![false; node_count];
        let mut exhausted = vec![false; node_count];
        let mut ctx = OperatorContext::new();

        loop {
            // 1. Deliver pending upstream control messages (high priority).
            let mut activity = deliver_control_sync(
                &mut plan,
                &routes,
                &mut edges,
                &mut metrics,
                &mut ctx,
                &done,
            )?;

            // 2. Step every node once, in topological order.
            for &NodeId(n) in &order {
                if done[n] {
                    continue;
                }
                let is_source = plan.nodes[n].inputs == 0;
                if is_source {
                    if !exhausted[n] {
                        let timer = Instant::now();
                        let state = plan.nodes[n]
                            .operator
                            .poll_source(&mut ctx)
                            .map_err(|err| wrap(&plan, n, err))?;
                        metrics[n].busy += timer.elapsed();
                        route_sync(&mut ctx, n, &routes, &mut edges, &mut metrics, &done);
                        match state {
                            SourceState::Producing => activity = true,
                            SourceState::Exhausted | SourceState::NotASource => {
                                exhausted[n] = true;
                                activity = true;
                            }
                        }
                    }
                    if exhausted[n] {
                        finish_sync(
                            &mut plan,
                            n,
                            &routes,
                            &mut edges,
                            &mut metrics,
                            &mut ctx,
                            &mut done,
                        )?;
                        activity = true;
                    }
                    continue;
                }

                // Consume at most one page per input this round.
                let mut consumed = false;
                for port in 0..plan.nodes[n].inputs {
                    let Some(e) = routes.in_edge(n, port) else { continue };
                    if let Some(page) = edges[e].queue.pop_front() {
                        consumed = true;
                        activity = true;
                        metrics[n].pages_in += 1;
                        metrics[n].tuples_in += page.tuple_count() as u64;
                        metrics[n].punctuations_in += page.punctuation_count() as u64;
                        let timer = Instant::now();
                        plan.nodes[n]
                            .operator
                            .on_page(port, page, &mut ctx)
                            .map_err(|err| wrap(&plan, n, err))?;
                        metrics[n].busy += timer.elapsed();
                        route_sync(&mut ctx, n, &routes, &mut edges, &mut metrics, &done);
                    }
                }

                // End-of-stream: all incoming edges exhausted and drained.
                if !consumed {
                    let inputs_done = (0..plan.nodes[n].inputs).all(|port| {
                        routes
                            .in_edge(n, port)
                            .map(|e| edges[e].eos && edges[e].queue.is_empty())
                            .unwrap_or(true)
                    });
                    if inputs_done {
                        finish_sync(
                            &mut plan,
                            n,
                            &routes,
                            &mut edges,
                            &mut metrics,
                            &mut ctx,
                            &mut done,
                        )?;
                        activity = true;
                    }
                }
            }

            if done.iter().all(|d| *d) {
                break;
            }
            if !activity {
                return Err(EngineError::ExecutionFailed {
                    detail: "execution stalled: no operator made progress".into(),
                });
            }
        }

        // 3. Post-run drain: the last operators to finish (typically sinks)
        // may have sent feedback from `on_flush` after every producer was
        // already stepped; keep delivering — feedback can relay further
        // upstream — until the control queues are quiescent.  This is the
        // sync analogue of the threaded executor's drain phase.
        while deliver_control_sync(&mut plan, &routes, &mut edges, &mut metrics, &mut ctx, &done)? {
        }

        // Fold in feedback stats.
        for (n, node) in plan.nodes.iter().enumerate() {
            if let Some(stats) = node.operator.feedback_stats() {
                metrics[n].feedback = stats;
            }
        }

        Ok(ExecutionReport { elapsed: started.elapsed(), metrics })
    }
}

fn wrap(plan: &QueryPlan, node: usize, err: EngineError) -> EngineError {
    EngineError::OperatorFailed { operator: plan.nodes[node].name.clone(), detail: err.to_string() }
}

/// Delivers every queued control message to its producer.  Producers receive
/// control even after they have flushed — operators stay alive for the whole
/// run, so flush-time feedback from downstream is never silently lost (the
/// paper's delivery guarantee; the threaded executor's drain phase provides
/// the same property).  Returns whether anything was delivered.
fn deliver_control_sync(
    plan: &mut QueryPlan,
    routes: &RoutingTable,
    edges: &mut [SyncEdgeState],
    metrics: &mut [OperatorMetrics],
    ctx: &mut OperatorContext,
    done: &[bool],
) -> EngineResult<bool> {
    let mut delivered = false;
    for e in 0..edges.len() {
        while let Some(msg) = edges[e].control.pop_front() {
            delivered = true;
            let producer = edges[e].edge.from.0;
            let port = edges[e].edge.from_port;
            let op = &mut plan.nodes[producer].operator;
            match msg {
                ControlMessage::Feedback(fb) => {
                    metrics[producer].feedback_in += 1;
                    op.on_feedback(port, fb, ctx).map_err(|err| wrap(plan, producer, err))?;
                }
                ControlMessage::RequestResults => {
                    op.on_request_results(port, ctx).map_err(|err| wrap(plan, producer, err))?;
                }
                ControlMessage::Shutdown | ControlMessage::EndOfStream => {}
            }
            route_sync(ctx, producer, routes, edges, metrics, done);
        }
    }
    Ok(delivered)
}

/// Routes one node's buffered emissions and feedback into the sync edge
/// state.  Data emitted by a node that has already flushed (possible when a
/// post-flush feedback callback emits) is counted but not enqueued —
/// end-of-stream has already been signalled on its edges.  Feedback named on
/// a port with no connected edge is counted as dropped.
fn route_sync(
    ctx: &mut OperatorContext,
    node: usize,
    routes: &RoutingTable,
    edges: &mut [SyncEdgeState],
    metrics: &mut [OperatorMetrics],
    done: &[bool],
) {
    ctx.drain_emitted(|port, item| {
        let deliverable = routes.out_edge(node, port).filter(|_| !done[node]);
        let Some(e) = deliverable else {
            // Unconnected output (sink side-channel) or post-flush emission:
            // count and drop.
            match item {
                StreamItem::Tuple(_) => metrics[node].tuples_out += 1,
                StreamItem::Punctuation(_) => metrics[node].punctuations_out += 1,
            }
            return;
        };
        let edge = &mut edges[e];
        match item {
            StreamItem::Tuple(t) => {
                metrics[node].tuples_out += 1;
                if let Some(page) = edge.builder.push_tuple(t) {
                    metrics[node].pages_out += 1;
                    edge.queue.push_back(page);
                }
            }
            StreamItem::Punctuation(p) => {
                metrics[node].punctuations_out += 1;
                let page = edge.builder.push_punctuation(p);
                metrics[node].pages_out += 1;
                edge.queue.push_back(page);
            }
        }
    });
    for (input, fb) in ctx.take_feedback() {
        match routes.in_edge(node, input) {
            Some(e) => {
                metrics[node].feedback_out += 1;
                edges[e].control.push_back(ControlMessage::Feedback(fb));
            }
            None => metrics[node].feedback_dropped += 1,
        }
    }
    for input in ctx.take_result_requests() {
        if let Some(e) = routes.in_edge(node, input) {
            edges[e].control.push_back(ControlMessage::RequestResults);
        }
    }
    // Broadcasts: control punctuation to every connected output (a
    // partitioner keeping its replicas punctuated) and feedback to every
    // connected input (a merge point fanning feedback out to its replicas).
    // The final target receives the original by move — N targets cost N-1
    // clones, and the single-target broadcast costs none.
    for punctuation in ctx.take_broadcast_punctuations() {
        let targets: Vec<usize> = if done[node] {
            Vec::new()
        } else {
            routes.outputs[node].iter().copied().flatten().collect()
        };
        if targets.is_empty() {
            metrics[node].punctuations_out += 1; // count-and-drop, as for port emissions
            continue;
        }
        let mut remaining = Some(punctuation);
        let last = targets.len() - 1;
        for (k, e) in targets.into_iter().enumerate() {
            let copy = if k == last {
                remaining.take().expect("one move per broadcast")
            } else {
                remaining.as_ref().expect("clones precede the move").clone()
            };
            metrics[node].punctuations_out += 1;
            let page = edges[e].builder.push_punctuation(copy);
            metrics[node].pages_out += 1;
            edges[e].queue.push_back(page);
        }
    }
    for fb in ctx.take_broadcast_feedback() {
        let targets: Vec<usize> = routes.inputs[node].iter().copied().flatten().collect();
        if targets.is_empty() {
            metrics[node].feedback_dropped += 1;
            continue;
        }
        let mut remaining = Some(fb);
        let last = targets.len() - 1;
        for (k, e) in targets.into_iter().enumerate() {
            let copy = if k == last {
                remaining.take().expect("one move per broadcast")
            } else {
                remaining.as_ref().expect("clones precede the move").clone()
            };
            metrics[node].feedback_out += 1;
            edges[e].control.push_back(ControlMessage::Feedback(copy));
        }
    }
}

/// Flushes a finished node and marks end-of-stream on its outgoing edges.
fn finish_sync(
    plan: &mut QueryPlan,
    node: usize,
    routes: &RoutingTable,
    edges: &mut [SyncEdgeState],
    metrics: &mut [OperatorMetrics],
    ctx: &mut OperatorContext,
    done: &mut [bool],
) -> EngineResult<()> {
    if done[node] {
        return Ok(());
    }
    let timer = Instant::now();
    plan.nodes[node].operator.on_flush(ctx).map_err(|err| wrap(plan, node, err))?;
    metrics[node].busy += timer.elapsed();
    route_sync(ctx, node, routes, edges, metrics, done);
    for port in 0..plan.nodes[node].outputs {
        if let Some(e) = routes.out_edge(node, port) {
            if let Some(page) = edges[e].builder.flush() {
                metrics[node].pages_out += 1;
                edges[e].queue.push_back(page);
            }
            edges[e].eos = true;
        }
    }
    done[node] = true;
    Ok(())
}

// ---------------------------------------------------------------------------
// Threaded (NiagaraST-style, event-driven) executor
// ---------------------------------------------------------------------------

/// One OS thread per operator, bounded page queues, out-of-band control.
/// Event-driven: idle threads block on channel events (no sleep-polling),
/// and end-of-stream runs the flush → drain → release protocol described in
/// the module docs so flush-time feedback is delivered upstream.
pub struct ThreadedExecutor;

/// A node's view of one incoming connection.
struct ThreadedInput {
    /// Input port the connection is attached to.
    port: usize,
    consumer: ConsumerEnd,
    /// Still expecting data: no end-of-stream (or hang-up) observed yet.
    open: bool,
}

/// A node's view of one outgoing connection.
struct ThreadedOutput {
    /// Output port the connection is attached to.
    port: usize,
    producer: ProducerEnd,
    builder: PageBuilder,
    /// The downstream consumer may still send control messages: its control
    /// end-of-stream handshake has not arrived and it has not hung up.
    control_open: bool,
    /// The data queue still has a live consumer (no send has failed).
    data_open: bool,
}

struct ThreadedNode {
    name: String,
    operator: Box<dyn Operator>,
    inputs: Vec<ThreadedInput>,
    outputs: Vec<ThreadedOutput>,
    /// input port → index into `inputs` (dense routing table).
    in_route: Vec<Option<usize>>,
    /// output port → index into `outputs` (dense routing table).
    out_route: Vec<Option<usize>>,
}

impl ThreadedExecutor {
    /// Runs the plan to completion, one thread per operator.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::{Operator, OperatorContext, QueryPlan, SourceState, ThreadedExecutor};
    /// # use dsms_engine::EngineResult;
    /// # use dsms_types::{DataType, Schema, Tuple, Value};
    /// # struct Nums(i64);
    /// # impl Operator for Nums {
    /// #     fn name(&self) -> &str { "nums" }
    /// #     fn inputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> { Ok(()) }
    /// #     fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
    /// #         if self.0 >= 100 { return Ok(SourceState::Exhausted); }
    /// #         let schema = Schema::shared(&[("v", DataType::Int)]);
    /// #         ctx.emit(0, Tuple::new(schema, vec![Value::Int(self.0)]));
    /// #         self.0 += 1;
    /// #         Ok(SourceState::Producing)
    /// #     }
    /// # }
    /// # struct Count(u64);
    /// # impl Operator for Count {
    /// #     fn name(&self) -> &str { "count" }
    /// #     fn inputs(&self) -> usize { 1 }
    /// #     fn outputs(&self) -> usize { 0 }
    /// #     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
    /// #         self.0 += 1;
    /// #         Ok(())
    /// #     }
    /// # }
    ///
    /// // Same operator code as under `SyncExecutor`, now one thread per
    /// // operator with bounded queues (back-pressure) between them.
    /// let mut plan = QueryPlan::new().with_queue_capacity(4);
    /// let source = plan.add(Nums(0));
    /// let sink = plan.add(Count(0));
    /// plan.connect_simple(source, sink)?;
    ///
    /// let report = ThreadedExecutor::run(plan)?;
    /// assert_eq!(report.operator("nums").unwrap().tuples_out, 100);
    /// assert_eq!(report.total_feedback_dropped(), 0);
    /// # Ok::<(), dsms_engine::EngineError>(())
    /// ```
    pub fn run(mut plan: QueryPlan) -> EngineResult<ExecutionReport> {
        plan.validate()?;
        let started = Instant::now();
        let page_capacity = plan.page_capacity;
        let queue_capacity = plan.queue_capacity;

        // Build one connection per edge.
        let mut producer_ends: Vec<Option<ProducerEnd>> = Vec::new();
        let mut consumer_ends: Vec<Option<ConsumerEnd>> = Vec::new();
        for _ in &plan.edges {
            let (p, c) = DataQueue::connection(queue_capacity);
            producer_ends.push(Some(p));
            consumer_ends.push(Some(c));
        }

        // Assemble per-node runtimes with dense port routing tables.
        let mut runtimes: Vec<ThreadedNode> = Vec::with_capacity(plan.nodes.len());
        let edges = plan.edges.clone();
        for (idx, node) in plan.nodes.drain(..).enumerate() {
            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            let mut in_route = vec![None; node.inputs];
            let mut out_route = vec![None; node.outputs];
            for (e_idx, e) in edges.iter().enumerate() {
                if e.to.0 == idx {
                    in_route[e.to_port] = Some(inputs.len());
                    inputs.push(ThreadedInput {
                        port: e.to_port,
                        consumer: consumer_ends[e_idx].take().expect("consumer end taken once"),
                        open: true,
                    });
                }
                if e.from.0 == idx {
                    out_route[e.from_port] = Some(outputs.len());
                    outputs.push(ThreadedOutput {
                        port: e.from_port,
                        producer: producer_ends[e_idx].take().expect("producer end taken once"),
                        builder: PageBuilder::new(page_capacity),
                        control_open: true,
                        data_open: true,
                    });
                }
            }
            runtimes.push(ThreadedNode {
                name: node.name,
                operator: node.operator,
                inputs,
                outputs,
                in_route,
                out_route,
            });
        }

        // Run each node on its own thread.
        let handles: Vec<_> = runtimes
            .into_iter()
            .map(|node| std::thread::spawn(move || run_threaded_node(node)))
            .collect();

        let mut metrics = Vec::with_capacity(handles.len());
        let mut first_error: Option<EngineError> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(m)) => metrics.push(m),
                Ok(Err(e)) => first_error = first_error.or(Some(e)),
                Err(_) => {
                    first_error = first_error.or(Some(EngineError::ExecutionFailed {
                        detail: "operator thread panicked".into(),
                    }))
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(ExecutionReport { elapsed: started.elapsed(), metrics })
    }
}

fn run_threaded_node(mut node: ThreadedNode) -> Result<OperatorMetrics, EngineError> {
    let mut metrics = OperatorMetrics::new(node.name.clone());
    let mut ctx = OperatorContext::new();
    match drive_node(&mut node, &mut metrics, &mut ctx) {
        Ok(()) => {
            if let Some(stats) = node.operator.feedback_stats() {
                metrics.feedback = stats;
            }
            Ok(metrics)
        }
        Err(err) => {
            // Failure teardown: ask upstream producers to stop generating
            // data nobody will read.  Downstream learns from the dropped
            // endpoints (its polls report `Closed`), so the whole query
            // unwinds promptly.
            for input in &node.inputs {
                input.consumer.send_control(ControlMessage::Shutdown);
            }
            Err(EngineError::OperatorFailed { operator: node.name, detail: err.to_string() })
        }
    }
}

/// The per-thread operator loop: active phase, then flush, drain, release
/// (see the module docs for the protocol).
fn drive_node(
    node: &mut ThreadedNode,
    metrics: &mut OperatorMetrics,
    ctx: &mut OperatorContext,
) -> EngineResult<()> {
    let is_source = node.inputs.is_empty();
    let mut shutdown = false;

    // Phase 1 — active: control first (with priority), then data; block on
    // channel events when there is nothing to do.
    loop {
        process_control(node, metrics, ctx, false, &mut shutdown)?;
        if shutdown {
            // Downstream is tearing the query down: relay source-ward and
            // stop producing.
            for input in &node.inputs {
                input.consumer.send_control(ControlMessage::Shutdown);
            }
            break;
        }

        if is_source {
            let timer = Instant::now();
            let state = node.operator.poll_source(ctx)?;
            metrics.busy += timer.elapsed();
            route_threaded(ctx, node, metrics, false);
            if !node.outputs.is_empty() && node.outputs.iter().all(|o| !o.data_open) {
                // Every consumer hung up; nothing downstream will read
                // further output.
                break;
            }
            match state {
                SourceState::Producing => continue,
                SourceState::Exhausted | SourceState::NotASource => break,
            }
        }

        let mut progressed = false;
        for i in 0..node.inputs.len() {
            if !node.inputs[i].open {
                continue;
            }
            let port = node.inputs[i].port;
            match node.inputs[i].consumer.poll_data() {
                DataPoll::Message(QueueMessage::Page(page)) => {
                    progressed = true;
                    metrics.pages_in += 1;
                    metrics.tuples_in += page.tuple_count() as u64;
                    metrics.punctuations_in += page.punctuation_count() as u64;
                    let timer = Instant::now();
                    node.operator.on_page(port, page, ctx)?;
                    metrics.busy += timer.elapsed();
                    route_threaded(ctx, node, metrics, false);
                }
                DataPoll::Message(QueueMessage::EndOfStream) | DataPoll::Closed => {
                    progressed = true;
                    node.inputs[i].open = false;
                }
                DataPoll::Empty => {}
            }
        }
        if node.inputs.iter().all(|i| !i.open) {
            break;
        }
        if !progressed {
            block_on_events(node, true);
        }
    }

    // Phase 2 — flush: emit remaining state and close the data streams.
    let timer = Instant::now();
    node.operator.on_flush(ctx)?;
    metrics.busy += timer.elapsed();
    route_threaded(ctx, node, metrics, false);
    for output in &mut node.outputs {
        if let Some(page) = output.builder.flush() {
            metrics.pages_out += 1;
            if output.data_open && !output.producer.send_page(page) {
                output.data_open = false;
            }
        }
        output.producer.send_end_of_stream();
    }

    // Phase 3 — drain: downstream consumers may still send feedback
    // (including from their own `on_flush`).  Stay alive, blocked on the
    // control channels, until each has sent its control end-of-stream
    // handshake or hung up.
    while node.outputs.iter().any(|o| o.control_open) {
        let progressed = process_control(node, metrics, ctx, true, &mut shutdown)?;
        if !progressed && node.outputs.iter().any(|o| o.control_open) {
            block_on_events(node, false);
        }
    }

    // Release: promise our upstream producers that no further control will
    // arrive on these connections, ending their drain phases in turn.
    for input in &node.inputs {
        input.consumer.send_control(ControlMessage::EndOfStream);
    }
    Ok(())
}

/// Parks the thread until any open input has data or any open downstream
/// control channel has traffic (or an endpoint hangs up).  Event-driven: the
/// multi-receiver wait is condvar-based, so an idle operator consumes no CPU.
fn block_on_events(node: &ThreadedNode, include_inputs: bool) {
    let inputs: Vec<&ConsumerEnd> = if include_inputs {
        node.inputs.iter().filter(|i| i.open).map(|i| &i.consumer).collect()
    } else {
        Vec::new()
    };
    let outputs: Vec<&ProducerEnd> =
        node.outputs.iter().filter(|o| o.control_open).map(|o| &o.producer).collect();
    wait_any(&inputs, &outputs);
}

/// Drains every pending control message from downstream, dispatching
/// feedback and result requests to the operator with priority.  Returns
/// whether anything was processed.
fn process_control(
    node: &mut ThreadedNode,
    metrics: &mut OperatorMetrics,
    ctx: &mut OperatorContext,
    after_eos: bool,
    shutdown: &mut bool,
) -> EngineResult<bool> {
    let mut progressed = false;
    for o in 0..node.outputs.len() {
        while node.outputs[o].control_open {
            match node.outputs[o].producer.poll_control() {
                ControlPoll::Message(ControlMessage::Feedback(fb)) => {
                    progressed = true;
                    metrics.feedback_in += 1;
                    let port = node.outputs[o].port;
                    node.operator.on_feedback(port, fb, ctx)?;
                    route_threaded(ctx, node, metrics, after_eos);
                }
                ControlPoll::Message(ControlMessage::RequestResults) => {
                    progressed = true;
                    let port = node.outputs[o].port;
                    node.operator.on_request_results(port, ctx)?;
                    route_threaded(ctx, node, metrics, after_eos);
                }
                ControlPoll::Message(ControlMessage::Shutdown) => {
                    progressed = true;
                    *shutdown = true;
                }
                ControlPoll::Message(ControlMessage::EndOfStream) | ControlPoll::Closed => {
                    progressed = true;
                    node.outputs[o].control_open = false;
                }
                ControlPoll::Empty => break,
            }
        }
    }
    Ok(progressed)
}

/// Routes buffered emissions and feedback through the node's dense port
/// tables.  `after_eos` marks routing performed during the drain phase: data
/// end-of-stream has already been sent, so late data emissions (from
/// post-flush feedback callbacks) are counted but cannot be delivered.
/// Undeliverable feedback — unconnected port, or upstream thread gone — is
/// counted in `feedback_dropped`.
fn route_threaded(
    ctx: &mut OperatorContext,
    node: &mut ThreadedNode,
    metrics: &mut OperatorMetrics,
    after_eos: bool,
) {
    ctx.drain_emitted(|port, item| {
        let slot = node.out_route.get(port).copied().flatten();
        let deliverable = match slot {
            Some(s) if !after_eos && node.outputs[s].data_open => Some(s),
            _ => None,
        };
        let Some(s) = deliverable else {
            // Unconnected output, hung-up consumer, or post-EOS emission:
            // count and drop.
            match item {
                StreamItem::Tuple(_) => metrics.tuples_out += 1,
                StreamItem::Punctuation(_) => metrics.punctuations_out += 1,
            }
            return;
        };
        let output = &mut node.outputs[s];
        match item {
            StreamItem::Tuple(t) => {
                metrics.tuples_out += 1;
                if let Some(page) = output.builder.push_tuple(t) {
                    metrics.pages_out += 1;
                    if !output.producer.send_page(page) {
                        output.data_open = false;
                    }
                }
            }
            StreamItem::Punctuation(p) => {
                metrics.punctuations_out += 1;
                let page = output.builder.push_punctuation(p);
                metrics.pages_out += 1;
                if !output.producer.send_page(page) {
                    output.data_open = false;
                }
            }
        }
    });
    for (input, fb) in ctx.take_feedback() {
        match node.in_route.get(input).copied().flatten() {
            Some(s) => {
                if node.inputs[s].consumer.send_control(ControlMessage::Feedback(fb)) {
                    metrics.feedback_out += 1;
                } else {
                    metrics.feedback_dropped += 1;
                }
            }
            None => metrics.feedback_dropped += 1,
        }
    }
    for input in ctx.take_result_requests() {
        if let Some(s) = node.in_route.get(input).copied().flatten() {
            node.inputs[s].consumer.send_control(ControlMessage::RequestResults);
        }
    }
    // Broadcasts (see `route_sync`): `node.outputs` / `node.inputs` hold
    // exactly the *connected* endpoints, so a broadcast is a walk over them,
    // with the final endpoint receiving the original by move.
    for punctuation in ctx.take_broadcast_punctuations() {
        let targets: Vec<usize> = if after_eos {
            Vec::new()
        } else {
            (0..node.outputs.len()).filter(|&s| node.outputs[s].data_open).collect()
        };
        if targets.is_empty() {
            metrics.punctuations_out += 1; // count-and-drop, as for port emissions
            continue;
        }
        let mut remaining = Some(punctuation);
        let last = targets.len() - 1;
        for (k, s) in targets.into_iter().enumerate() {
            let copy = if k == last {
                remaining.take().expect("one move per broadcast")
            } else {
                remaining.as_ref().expect("clones precede the move").clone()
            };
            metrics.punctuations_out += 1;
            let output = &mut node.outputs[s];
            let page = output.builder.push_punctuation(copy);
            metrics.pages_out += 1;
            if !output.producer.send_page(page) {
                output.data_open = false;
            }
        }
    }
    for fb in ctx.take_broadcast_feedback() {
        if node.inputs.is_empty() {
            metrics.feedback_dropped += 1;
            continue;
        }
        let mut remaining = Some(fb);
        let last = node.inputs.len() - 1;
        for (s, input) in node.inputs.iter().enumerate() {
            let copy = if s == last {
                remaining.take().expect("one move per broadcast")
            } else {
                remaining.as_ref().expect("clones precede the move").clone()
            };
            if input.consumer.send_control(ControlMessage::Feedback(copy)) {
                metrics.feedback_out += 1;
            } else {
                metrics.feedback_dropped += 1;
            }
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use dsms_feedback::FeedbackPunctuation;
    use dsms_punctuation::{Pattern, PatternItem, Punctuation};
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Tuple, Value};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(ts: i64, v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(v)])
    }

    /// Source emitting `0..n` with punctuation every `punct_every` tuples.
    struct CountingSource {
        n: i64,
        next: i64,
        punct_every: i64,
        suppressed_below: Option<i64>,
        feedback_seen: Arc<Mutex<Vec<FeedbackPunctuation>>>,
    }

    impl CountingSource {
        fn new(n: i64, punct_every: i64) -> Self {
            CountingSource {
                n,
                next: 0,
                punct_every,
                suppressed_below: None,
                feedback_seen: Arc::new(Mutex::new(Vec::new())),
            }
        }
    }

    impl Operator for CountingSource {
        fn name(&self) -> &str {
            "source"
        }
        fn inputs(&self) -> usize {
            0
        }
        fn on_tuple(&mut self, _i: usize, _t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _output: usize,
            feedback: FeedbackPunctuation,
            _ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            // Exploit "v >= k is assumed away" by remembering the bound.
            if let Ok(PatternItem::Ge(Value::Int(k))) = feedback.pattern().item_for("v").cloned() {
                self.suppressed_below = Some(k);
            }
            self.feedback_seen.lock().push(feedback);
            Ok(())
        }
        fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
            if self.next >= self.n {
                return Ok(SourceState::Exhausted);
            }
            let v = self.next;
            self.next += 1;
            let skip = self.suppressed_below.map(|k| v >= k).unwrap_or(false);
            if !skip {
                ctx.emit(0, tuple(v, v));
            }
            if self.punct_every > 0 && v % self.punct_every == self.punct_every - 1 {
                ctx.emit_punctuation(
                    0,
                    Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(v)).unwrap(),
                );
            }
            Ok(SourceState::Producing)
        }
    }

    /// Filter keeping even values, forwarding punctuation.
    struct EvenFilter;

    impl Operator for EvenFilter {
        fn name(&self) -> &str {
            "even"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            if t.int("v").unwrap_or(0) % 2 == 0 {
                ctx.emit(0, t);
            }
            Ok(())
        }
    }

    /// Sink collecting tuples; optionally sends feedback after a threshold,
    /// on a fixed cadence, or from `on_flush` (the regression case: feedback
    /// produced at end-of-stream).
    struct CollectingSink {
        collected: Arc<Mutex<Vec<Tuple>>>,
        punctuations: Arc<Mutex<Vec<Punctuation>>>,
        feedback_after: Option<i64>,
        sent_feedback: bool,
        /// Send (non-suppressing) feedback every N arrivals.
        feedback_every: Option<u64>,
        /// Send (non-suppressing) feedback from `on_flush`.
        feedback_on_flush: bool,
        seen: u64,
    }

    impl CollectingSink {
        fn new() -> (Self, Arc<Mutex<Vec<Tuple>>>) {
            let collected = Arc::new(Mutex::new(Vec::new()));
            (
                CollectingSink {
                    collected: collected.clone(),
                    punctuations: Arc::new(Mutex::new(Vec::new())),
                    feedback_after: None,
                    sent_feedback: false,
                    feedback_every: None,
                    feedback_on_flush: false,
                    seen: 0,
                },
                collected,
            )
        }

        /// Feedback whose bound (`v >= 1_000_000`) no test stream reaches, so
        /// sending it never changes the data the source produces.
        fn harmless_feedback() -> FeedbackPunctuation {
            FeedbackPunctuation::assumed(
                Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(1_000_000)))])
                    .unwrap(),
                "sink",
            )
        }
    }

    impl Operator for CollectingSink {
        fn name(&self) -> &str {
            "sink"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            0
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            let v = t.int("v").unwrap_or(0);
            self.collected.lock().push(t);
            self.seen += 1;
            if let Some(threshold) = self.feedback_after {
                if !self.sent_feedback && v >= threshold {
                    self.sent_feedback = true;
                    ctx.send_feedback(
                        0,
                        FeedbackPunctuation::assumed(
                            Pattern::for_attributes(
                                schema(),
                                &[("v", PatternItem::Ge(Value::Int(threshold + 10)))],
                            )
                            .unwrap(),
                            "sink",
                        ),
                    );
                }
            }
            if let Some(every) = self.feedback_every {
                if self.seen % every == 0 {
                    ctx.send_feedback(0, Self::harmless_feedback());
                }
            }
            Ok(())
        }

        fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
            if self.feedback_on_flush {
                ctx.send_feedback(0, Self::harmless_feedback());
            }
            Ok(())
        }
        fn on_punctuation(
            &mut self,
            _i: usize,
            p: Punctuation,
            _ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            self.punctuations.lock().push(p);
            Ok(())
        }
    }

    fn linear_plan(n: i64, feedback_after: Option<i64>) -> (QueryPlan, Arc<Mutex<Vec<Tuple>>>) {
        let mut plan = QueryPlan::new().with_page_capacity(8);
        let src = plan.add(CountingSource::new(n, 10));
        let filter = plan.add(EvenFilter);
        let (mut sink, collected) = CollectingSink::new();
        sink.feedback_after = feedback_after;
        let sink = plan.add(sink);
        plan.connect_simple(src, filter).unwrap();
        plan.connect_simple(filter, sink).unwrap();
        (plan, collected)
    }

    #[test]
    fn sync_executor_runs_linear_plan() {
        let (plan, collected) = linear_plan(100, None);
        let report = SyncExecutor::run(plan).unwrap();
        assert_eq!(collected.lock().len(), 50, "even values of 0..100");
        let src = report.operator("source").unwrap();
        assert_eq!(src.tuples_out, 100);
        assert_eq!(src.punctuations_out, 10);
        let sink = report.operator("sink").unwrap();
        assert_eq!(sink.tuples_in, 50);
        assert!(sink.punctuations_in >= 1);
    }

    #[test]
    fn threaded_executor_matches_sync_results() {
        let (plan, collected) = linear_plan(200, None);
        let report = ThreadedExecutor::run(plan).unwrap();
        assert_eq!(collected.lock().len(), 100);
        assert_eq!(report.operator("source").unwrap().tuples_out, 200);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn feedback_travels_upstream_in_sync_executor() {
        let (plan, collected) = linear_plan(1_000, Some(100));
        let report = SyncExecutor::run(plan).unwrap();
        // The sink asks (once it sees v >= 100) that v >= 110 be assumed away; the
        // feedback-unaware filter ignores it, but the source receives nothing —
        // the filter does not relay.  So the full stream still arrives.
        assert_eq!(collected.lock().len(), 500);
        assert_eq!(report.operator("sink").unwrap().feedback_out, 1);
        assert_eq!(report.operator("even").unwrap().feedback_in, 1);
        assert_eq!(
            report.operator("source").unwrap().feedback_in,
            0,
            "unaware operators do not relay"
        );
        assert_eq!(report.total_feedback_dropped(), 0, "delivered (and absorbed), not dropped");
    }

    /// A filter variant that *relays* feedback upstream unchanged.
    struct RelayingFilter;

    impl Operator for RelayingFilter {
        fn name(&self) -> &str {
            "relay"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            ctx.emit(0, t);
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _output: usize,
            feedback: FeedbackPunctuation,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            ctx.send_feedback(0, feedback.relay(feedback.pattern().clone(), "relay"));
            Ok(())
        }
    }

    #[test]
    fn relayed_feedback_reaches_the_source_and_is_exploited() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4).with_queue_capacity(4);
            let source = CountingSource::new(5_000, 50);
            let feedback_seen = source.feedback_seen.clone();
            let src = plan.add(source);
            let relay = plan.add(RelayingFilter);
            let (mut sink, collected) = CollectingSink::new();
            sink.feedback_after = Some(50);
            let sink = plan.add(sink);
            plan.connect_simple(src, relay).unwrap();
            plan.connect_simple(relay, sink).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(report.operator("sink").unwrap().feedback_out, 1);
            assert_eq!(report.operator("relay").unwrap().feedback_in, 1);
            assert_eq!(report.operator("source").unwrap().feedback_in, 1);
            assert_eq!(report.total_feedback_dropped(), 0, "every relayed message is delivered");
            assert_eq!(feedback_seen.lock().len(), 1);
            // The source exploited ¬[*, >=60]: far fewer than 5000 tuples arrive.
            let n = collected.lock().len();
            assert!(n < 5_000, "source suppression must reduce output (got {n})");
            assert!(n >= 60, "tuples below the bound must still arrive (got {n})");
        }
    }

    /// The headline regression for the drain protocol: feedback emitted from
    /// a sink's `on_flush` — i.e. *after* every upstream operator has already
    /// finished producing — must still be relayed all the way to the source,
    /// with nothing counted as dropped, in both executors.
    #[test]
    fn flush_feedback_reaches_live_source_in_both_executors() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4).with_queue_capacity(4);
            let source = CountingSource::new(500, 50);
            let feedback_seen = source.feedback_seen.clone();
            let src = plan.add(source);
            let relay = plan.add(RelayingFilter);
            let (mut sink, collected) = CollectingSink::new();
            sink.feedback_on_flush = true;
            let sink = plan.add(sink);
            plan.connect_simple(src, relay).unwrap();
            plan.connect_simple(relay, sink).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(collected.lock().len(), 500, "threaded={threaded}");
            assert_eq!(report.operator("sink").unwrap().feedback_out, 1, "threaded={threaded}");
            assert_eq!(report.operator("relay").unwrap().feedback_in, 1, "threaded={threaded}");
            assert_eq!(
                report.operator("source").unwrap().feedback_in,
                1,
                "flush-time feedback must reach the source (threaded={threaded})"
            );
            assert_eq!(feedback_seen.lock().len(), 1, "threaded={threaded}");
            assert_eq!(report.total_feedback_dropped(), 0, "threaded={threaded}");
        }
    }

    /// Back-pressure stress: tiny pages, a single-page queue bound, and
    /// feedback flowing upstream concurrently with thousands of data pages.
    /// Nothing may be lost in either direction.
    #[test]
    fn threaded_backpressure_with_concurrent_feedback_stress() {
        let mut plan = QueryPlan::new().with_page_capacity(1).with_queue_capacity(1);
        let source = CountingSource::new(5_000, 7);
        let feedback_seen = source.feedback_seen.clone();
        let src = plan.add(source);
        let relay = plan.add(RelayingFilter);
        let (mut sink, collected) = CollectingSink::new();
        sink.feedback_every = Some(250);
        sink.feedback_on_flush = true;
        let sink = plan.add(sink);
        plan.connect_simple(src, relay).unwrap();
        plan.connect_simple(relay, sink).unwrap();

        let report = ThreadedExecutor::run(plan).unwrap();
        assert_eq!(collected.lock().len(), 5_000, "no data lost under back-pressure");
        let sent = report.operator("sink").unwrap().feedback_out;
        assert_eq!(sent, 5_000 / 250 + 1, "cadence feedback plus the flush-time message");
        assert_eq!(report.operator("relay").unwrap().feedback_in, sent);
        assert_eq!(report.operator("source").unwrap().feedback_in, sent);
        assert_eq!(feedback_seen.lock().len(), sent as usize);
        assert_eq!(report.total_feedback_dropped(), 0);
    }

    /// Filter that fails after a fixed number of tuples.
    struct FailingFilter {
        after: u64,
        seen: u64,
    }

    impl Operator for FailingFilter {
        fn name(&self) -> &str {
            "failing"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            self.seen += 1;
            if self.seen > self.after {
                return Err(EngineError::ExecutionFailed { detail: "injected failure".into() });
            }
            ctx.emit(0, t);
            Ok(())
        }
    }

    /// An operator failure must shut the whole threaded query down promptly:
    /// shutdown relays upstream (the source stops producing its 100k tuples)
    /// and the error surfaces — the test completing at all proves no thread
    /// deadlocks in the drain protocol.
    #[test]
    fn operator_failure_shuts_both_executors_down() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(2).with_queue_capacity(2);
            let src = plan.add(CountingSource::new(100_000, 0));
            let failing = plan.add(FailingFilter { after: 10, seen: 0 });
            let (sink, _collected) = CollectingSink::new();
            let sink = plan.add(sink);
            plan.connect_simple(src, failing).unwrap();
            plan.connect_simple(failing, sink).unwrap();

            let err = if threaded {
                ThreadedExecutor::run(plan).unwrap_err()
            } else {
                SyncExecutor::run(plan).unwrap_err()
            };
            assert!(
                matches!(err, EngineError::OperatorFailed { ref operator, .. } if operator == "failing"),
                "threaded={threaded}: {err}"
            );
        }
    }

    /// Sink that names a nonexistent input port when sending feedback — the
    /// one genuinely undeliverable case, which must be *counted*, never
    /// silently ignored.
    struct MisroutedFeedbackSink {
        sent: bool,
    }

    impl Operator for MisroutedFeedbackSink {
        fn name(&self) -> &str {
            "misrouted"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            0
        }
        fn on_tuple(
            &mut self,
            _i: usize,
            _t: Tuple,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            if !self.sent {
                self.sent = true;
                ctx.send_feedback(
                    7,
                    FeedbackPunctuation::assumed(Pattern::all_wildcards(schema()), "misrouted"),
                );
            }
            Ok(())
        }
    }

    #[test]
    fn undeliverable_feedback_is_counted_in_both_executors() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4);
            let src = plan.add(CountingSource::new(20, 0));
            let sink = plan.add(MisroutedFeedbackSink { sent: false });
            plan.connect_simple(src, sink).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            let sink = report.operator("misrouted").unwrap();
            assert_eq!(sink.feedback_dropped, 1, "threaded={threaded}");
            assert_eq!(sink.feedback_out, 0, "threaded={threaded}");
            assert_eq!(report.total_feedback_dropped(), 1, "threaded={threaded}");
        }
    }

    /// A 1→2 router that broadcasts punctuation to both outputs and, per
    /// tuple, alternates the data route; it also broadcasts any feedback it
    /// receives upstream on every input.
    struct BroadcastingRouter {
        next_out: usize,
    }

    impl Operator for BroadcastingRouter {
        fn name(&self) -> &str {
            "router"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            2
        }
        fn on_tuple(&mut self, _i: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            ctx.emit(self.next_out, t);
            self.next_out = (self.next_out + 1) % 2;
            Ok(())
        }
        fn on_punctuation(
            &mut self,
            _input: usize,
            punctuation: Punctuation,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            ctx.broadcast_punctuation(punctuation);
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _output: usize,
            feedback: FeedbackPunctuation,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            ctx.broadcast_feedback(feedback.relay(feedback.pattern().clone(), "router"));
            Ok(())
        }
    }

    /// Broadcast routing: punctuation reaches *every* downstream consumer
    /// while data follows the per-tuple route, and feedback broadcast
    /// upstream reaches the source — on both executors, with nothing dropped.
    #[test]
    fn broadcasts_reach_every_connected_endpoint() {
        for threaded in [false, true] {
            let mut plan = QueryPlan::new().with_page_capacity(4).with_queue_capacity(4);
            let source = CountingSource::new(100, 10);
            let feedback_seen = source.feedback_seen.clone();
            let src = plan.add(source);
            let router = plan.add(BroadcastingRouter { next_out: 0 });
            let (mut sink_a, collected_a) = CollectingSink::new();
            sink_a.feedback_on_flush = true;
            let (sink_b, collected_b) = CollectingSink::new();
            let punct_b = sink_b.punctuations.clone();
            let sink_a = plan.add(sink_a);
            let sink_b = plan.add(sink_b);
            plan.connect_simple(src, router).unwrap();
            plan.connect(router, 0, sink_a, 0).unwrap();
            plan.connect(router, 1, sink_b, 0).unwrap();

            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(
                collected_a.lock().len() + collected_b.lock().len(),
                100,
                "data is routed, not duplicated (threaded={threaded})"
            );
            assert_eq!(
                report.operator("router").unwrap().punctuations_out,
                2 * report.operator("router").unwrap().punctuations_in,
                "punctuation is broadcast to both outputs (threaded={threaded})"
            );
            assert!(!punct_b.lock().is_empty(), "threaded={threaded}");
            assert_eq!(
                feedback_seen.lock().len(),
                1,
                "flush-time feedback, broadcast upstream, reaches the source \
                 (threaded={threaded})"
            );
            assert_eq!(report.total_feedback_dropped(), 0, "threaded={threaded}");
        }
    }

    #[test]
    fn invalid_plans_are_rejected_by_both_executors() {
        let mut plan = QueryPlan::new();
        plan.add(EvenFilter); // input never connected
        assert!(matches!(SyncExecutor::run(plan), Err(EngineError::InvalidPlan { .. })));

        let mut plan = QueryPlan::new();
        plan.add(EvenFilter);
        assert!(matches!(ThreadedExecutor::run(plan), Err(EngineError::InvalidPlan { .. })));
    }

    #[test]
    fn execution_report_helpers() {
        let (plan, _collected) = linear_plan(20, None);
        let report = SyncExecutor::run(plan).unwrap();
        assert!(report.operator("missing").is_none());
        assert!(report.total_tuples_out() >= 20);
        assert_eq!(report.total_feedback(), 0);
    }
}
