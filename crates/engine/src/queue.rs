//! Inter-operator queues.
//!
//! A connection between two operators consists of a bounded *data queue* of
//! pages flowing downstream and an unbounded *control queue* flowing upstream
//! (feedback punctuation, result requests).  The bounded data queue provides
//! back-pressure: a fast producer blocks once the consumer falls behind by
//! `capacity` pages, which is how NiagaraST-style pipelined engines keep
//! memory bounded.  Control messages are never blocked — they are small,
//! high-priority and must overtake data (paper Section 5).

use crate::control::ControlMessage;
use crate::page::Page;
use crossbeam_channel::{bounded, unbounded, Receiver, Sender, TrySendError};

/// A message on the data queue.
#[derive(Debug, Clone)]
pub enum QueueMessage {
    /// A page of tuples and embedded punctuation.
    Page(Page),
    /// The producer is done; no more pages will follow.
    EndOfStream,
}

/// Producer endpoint of a connection: sends pages downstream, receives control
/// messages from the consumer.
#[derive(Debug, Clone)]
pub struct ProducerEnd {
    data: Sender<QueueMessage>,
    control: Receiver<ControlMessage>,
}

/// Consumer endpoint of a connection: receives pages, sends control messages
/// (feedback) upstream.
#[derive(Debug, Clone)]
pub struct ConsumerEnd {
    data: Receiver<QueueMessage>,
    control: Sender<ControlMessage>,
}

/// A paged, bounded inter-operator queue with an unbounded upstream control
/// channel.
#[derive(Debug)]
pub struct DataQueue;

impl DataQueue {
    /// Default bound on in-flight pages per connection.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates a connection with the given page capacity, returning the
    /// producer and consumer endpoints.
    pub fn connection(capacity: usize) -> (ProducerEnd, ConsumerEnd) {
        let (data_tx, data_rx) = bounded(capacity.max(1));
        let (ctrl_tx, ctrl_rx) = unbounded();
        (
            ProducerEnd { data: data_tx, control: ctrl_rx },
            ConsumerEnd { data: data_rx, control: ctrl_tx },
        )
    }
}

impl ProducerEnd {
    /// Sends a page downstream, blocking when the queue is full
    /// (back-pressure).  Returns `false` when the consumer has hung up.
    pub fn send_page(&self, page: Page) -> bool {
        self.data.send(QueueMessage::Page(page)).is_ok()
    }

    /// Attempts to send a page without blocking.  Returns the page back when
    /// the queue is full.
    pub fn try_send_page(&self, page: Page) -> Result<(), Page> {
        match self.data.try_send(QueueMessage::Page(page)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(QueueMessage::Page(p)))
            | Err(TrySendError::Disconnected(QueueMessage::Page(p))) => Err(p),
            Err(_) => unreachable!("only pages are try-sent"),
        }
    }

    /// Signals end-of-stream to the consumer.
    pub fn send_end_of_stream(&self) {
        let _ = self.data.send(QueueMessage::EndOfStream);
    }

    /// Drains any control messages (feedback) the consumer has sent upstream.
    pub fn drain_control(&self) -> Vec<ControlMessage> {
        let mut msgs = Vec::new();
        while let Ok(m) = self.control.try_recv() {
            msgs.push(m);
        }
        msgs
    }
}

impl ConsumerEnd {
    /// Attempts to receive the next data message without blocking.
    pub fn try_recv(&self) -> Option<QueueMessage> {
        self.data.try_recv().ok()
    }

    /// Receives the next data message, blocking until one arrives or the
    /// producer hangs up.
    pub fn recv(&self) -> Option<QueueMessage> {
        self.data.recv().ok()
    }

    /// Sends a control message (feedback punctuation, result request)
    /// upstream.  Never blocks.
    pub fn send_control(&self, message: ControlMessage) {
        let _ = self.control.send(message);
    }

    /// Number of pages currently buffered (approximate).
    pub fn pending(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::StreamItem;
    use dsms_feedback::FeedbackPunctuation;
    use dsms_punctuation::Pattern;
    use dsms_types::{DataType, Schema, Tuple, Value};

    fn page() -> Page {
        let schema = Schema::shared(&[("v", DataType::Int)]);
        Page::from_items(vec![StreamItem::Tuple(Tuple::new(schema, vec![Value::Int(1)]))])
    }

    #[test]
    fn pages_flow_downstream_in_order() {
        let (producer, consumer) = DataQueue::connection(4);
        assert!(producer.send_page(page()));
        producer.send_end_of_stream();
        assert!(matches!(consumer.recv(), Some(QueueMessage::Page(_))));
        assert!(matches!(consumer.recv(), Some(QueueMessage::EndOfStream)));
    }

    #[test]
    fn control_messages_flow_upstream() {
        let (producer, consumer) = DataQueue::connection(4);
        let schema = Schema::shared(&[("v", DataType::Int)]);
        consumer.send_control(ControlMessage::Feedback(FeedbackPunctuation::assumed(
            Pattern::all_wildcards(schema),
            "consumer",
        )));
        consumer.send_control(ControlMessage::RequestResults);
        let drained = producer.drain_control();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].kind(), "feedback");
        assert_eq!(drained[1].kind(), "request-results");
        assert!(producer.drain_control().is_empty());
    }

    #[test]
    fn try_send_reports_full_queue() {
        let (producer, consumer) = DataQueue::connection(1);
        assert!(producer.try_send_page(page()).is_ok());
        assert!(producer.try_send_page(page()).is_err(), "capacity 1 queue is full");
        assert_eq!(consumer.pending(), 1);
        assert!(consumer.try_recv().is_some());
        assert!(consumer.try_recv().is_none());
    }

    #[test]
    fn hung_up_consumer_is_reported() {
        let (producer, consumer) = DataQueue::connection(1);
        drop(consumer);
        assert!(!producer.send_page(page()));
    }
}
