//! Inter-operator queues.
//!
//! A connection between two operators consists of a bounded *data queue* of
//! pages flowing downstream and an unbounded *control queue* flowing upstream
//! (feedback punctuation, result requests).  The bounded data queue provides
//! back-pressure: a fast producer blocks once the consumer falls behind by
//! `capacity` pages, which is how NiagaraST-style pipelined engines keep
//! memory bounded.  Control messages are never blocked — they are small,
//! high-priority and must overtake data (paper Section 5).
//!
//! Both endpoints implement `crossbeam_channel::SelectHandle`, so an
//! operator thread can park in a single condvar-based wait ([`wait_any`])
//! spanning all of its input data queues and downstream control channels —
//! the event-driven alternative to sleep-polling.  The `poll_*` methods
//! distinguish "nothing queued yet" from "peer endpoint gone", which the
//! executor's drain protocol relies on for prompt, loss-free teardown.

use crate::control::ControlMessage;
use crate::page::Page;
use crossbeam_channel::{
    bounded, unbounded, Receiver, Select, SelectHandle, Sender, TryRecvError, TrySendError, Waker,
};

/// A message on the data queue.
#[derive(Debug, Clone)]
pub enum QueueMessage {
    /// A page of tuples and embedded punctuation.
    Page(Page),
    /// The producer is done; no more pages will follow.
    EndOfStream,
}

/// The outcome of a non-blocking receive on a data queue.
#[derive(Debug)]
pub enum DataPoll {
    /// A message was waiting.
    Message(QueueMessage),
    /// Nothing queued right now; the producer is still attached.
    Empty,
    /// The queue is empty and the producer endpoint has been dropped (the
    /// upstream thread exited).  Equivalent to end-of-stream.
    Closed,
}

/// The outcome of a non-blocking receive on a control channel.
#[derive(Debug)]
pub enum ControlPoll {
    /// A control message was waiting.
    Message(ControlMessage),
    /// Nothing queued right now; the consumer is still attached.
    Empty,
    /// The channel is empty and the consumer endpoint has been dropped (the
    /// downstream thread exited).  No further control can arrive.
    Closed,
}

/// Producer endpoint of a connection: sends pages downstream, receives control
/// messages from the consumer.
#[derive(Debug, Clone)]
pub struct ProducerEnd {
    data: Sender<QueueMessage>,
    control: Receiver<ControlMessage>,
}

/// Consumer endpoint of a connection: receives pages, sends control messages
/// (feedback) upstream.
#[derive(Debug, Clone)]
pub struct ConsumerEnd {
    data: Receiver<QueueMessage>,
    control: Sender<ControlMessage>,
}

/// A paged, bounded inter-operator queue with an unbounded upstream control
/// channel.
#[derive(Debug)]
pub struct DataQueue;

impl DataQueue {
    /// Default bound on in-flight pages per connection.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates a connection with the given page capacity, returning the
    /// producer and consumer endpoints.
    pub fn connection(capacity: usize) -> (ProducerEnd, ConsumerEnd) {
        let (data_tx, data_rx) = bounded(capacity.max(1));
        let (ctrl_tx, ctrl_rx) = unbounded();
        (
            ProducerEnd { data: data_tx, control: ctrl_rx },
            ConsumerEnd { data: data_rx, control: ctrl_tx },
        )
    }
}

impl ProducerEnd {
    /// Sends a page downstream, blocking when the queue is full
    /// (back-pressure).  Returns `false` when the consumer has hung up.
    pub fn send_page(&self, page: Page) -> bool {
        self.data.send(QueueMessage::Page(page)).is_ok()
    }

    /// Attempts to send a page without blocking.  Returns the page back when
    /// the queue is full.
    pub fn try_send_page(&self, page: Page) -> Result<(), Page> {
        match self.data.try_send(QueueMessage::Page(page)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(QueueMessage::Page(p)))
            | Err(TrySendError::Disconnected(QueueMessage::Page(p))) => Err(p),
            Err(_) => unreachable!("only pages are try-sent"),
        }
    }

    /// Signals end-of-stream to the consumer.
    pub fn send_end_of_stream(&self) {
        let _ = self.data.send(QueueMessage::EndOfStream);
    }

    /// Non-blocking receive of one control message the consumer sent
    /// upstream, distinguishing "nothing yet" from "consumer gone".
    pub fn poll_control(&self) -> ControlPoll {
        match self.control.try_recv() {
            Ok(message) => ControlPoll::Message(message),
            Err(TryRecvError::Empty) => ControlPoll::Empty,
            Err(TryRecvError::Disconnected) => ControlPoll::Closed,
        }
    }

    /// Drains any control messages (feedback) the consumer has sent upstream.
    pub fn drain_control(&self) -> Vec<ControlMessage> {
        let mut msgs = Vec::new();
        while let Ok(m) = self.control.try_recv() {
            msgs.push(m);
        }
        msgs
    }
}

impl SelectHandle for ProducerEnd {
    fn is_ready(&self) -> bool {
        self.control.is_ready()
    }

    fn register(&self, waker: &Waker) {
        self.control.register(waker);
    }
}

impl ConsumerEnd {
    /// Attempts to receive the next data message without blocking.
    pub fn try_recv(&self) -> Option<QueueMessage> {
        self.data.try_recv().ok()
    }

    /// Non-blocking receive of one data message, distinguishing "nothing
    /// yet" from "producer gone" (which a consumer treats as end-of-stream).
    pub fn poll_data(&self) -> DataPoll {
        match self.data.try_recv() {
            Ok(message) => DataPoll::Message(message),
            Err(TryRecvError::Empty) => DataPoll::Empty,
            Err(TryRecvError::Disconnected) => DataPoll::Closed,
        }
    }

    /// Receives the next data message, blocking until one arrives or the
    /// producer hangs up.
    pub fn recv(&self) -> Option<QueueMessage> {
        self.data.recv().ok()
    }

    /// Sends a control message (feedback punctuation, result request)
    /// upstream.  Never blocks.  Returns `false` when the producer endpoint
    /// is gone (its thread exited), i.e. the message is undeliverable.
    pub fn send_control(&self, message: ControlMessage) -> bool {
        self.control.send(message).is_ok()
    }

    /// Number of pages currently buffered (approximate).
    pub fn pending(&self) -> usize {
        self.data.len()
    }
}

impl SelectHandle for ConsumerEnd {
    fn is_ready(&self) -> bool {
        self.data.is_ready()
    }

    fn register(&self, waker: &Waker) {
        self.data.register(waker);
    }
}

/// Blocks until any of the given endpoints is ready: a data message on some
/// consumer endpoint, or a control message (or hang-up) on some producer
/// endpoint.  This is the threaded executor's idle wait — operator threads
/// park here instead of sleep-polling.  No-ops when both slices are empty.
pub fn wait_any(inputs: &[&ConsumerEnd], outputs: &[&ProducerEnd]) {
    let mut select = Select::new();
    for input in inputs {
        select.watch(*input);
    }
    for output in outputs {
        select.watch(*output);
    }
    if inputs.is_empty() && outputs.is_empty() {
        return;
    }
    select.ready();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::StreamItem;
    use dsms_feedback::FeedbackPunctuation;
    use dsms_punctuation::Pattern;
    use dsms_types::{DataType, Schema, Tuple, Value};

    fn page() -> Page {
        let schema = Schema::shared(&[("v", DataType::Int)]);
        Page::from_items(vec![StreamItem::Tuple(Tuple::new(schema, vec![Value::Int(1)]))])
    }

    #[test]
    fn pages_flow_downstream_in_order() {
        let (producer, consumer) = DataQueue::connection(4);
        assert!(producer.send_page(page()));
        producer.send_end_of_stream();
        assert!(matches!(consumer.recv(), Some(QueueMessage::Page(_))));
        assert!(matches!(consumer.recv(), Some(QueueMessage::EndOfStream)));
    }

    #[test]
    fn control_messages_flow_upstream() {
        let (producer, consumer) = DataQueue::connection(4);
        let schema = Schema::shared(&[("v", DataType::Int)]);
        consumer.send_control(ControlMessage::Feedback(FeedbackPunctuation::assumed(
            Pattern::all_wildcards(schema),
            "consumer",
        )));
        consumer.send_control(ControlMessage::RequestResults);
        let drained = producer.drain_control();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].kind(), "feedback");
        assert_eq!(drained[1].kind(), "request-results");
        assert!(producer.drain_control().is_empty());
    }

    #[test]
    fn try_send_reports_full_queue() {
        let (producer, consumer) = DataQueue::connection(1);
        assert!(producer.try_send_page(page()).is_ok());
        assert!(producer.try_send_page(page()).is_err(), "capacity 1 queue is full");
        assert_eq!(consumer.pending(), 1);
        assert!(consumer.try_recv().is_some());
        assert!(consumer.try_recv().is_none());
    }

    #[test]
    fn hung_up_consumer_is_reported() {
        let (producer, consumer) = DataQueue::connection(1);
        drop(consumer);
        assert!(!producer.send_page(page()));
    }

    #[test]
    fn polls_distinguish_empty_from_closed() {
        let (producer, consumer) = DataQueue::connection(2);
        assert!(matches!(consumer.poll_data(), DataPoll::Empty));
        assert!(matches!(producer.poll_control(), ControlPoll::Empty));
        producer.send_page(page());
        assert!(consumer.send_control(ControlMessage::RequestResults));
        assert!(matches!(consumer.poll_data(), DataPoll::Message(QueueMessage::Page(_))));
        assert!(matches!(
            producer.poll_control(),
            ControlPoll::Message(ControlMessage::RequestResults)
        ));
        drop(producer);
        assert!(matches!(consumer.poll_data(), DataPoll::Closed));
        assert!(!consumer.send_control(ControlMessage::EndOfStream), "producer gone");
        let (producer, consumer) = DataQueue::connection(2);
        drop(consumer);
        assert!(matches!(producer.poll_control(), ControlPoll::Closed));
    }

    #[test]
    fn wait_any_wakes_on_data_and_on_control() {
        let (producer, consumer) = DataQueue::connection(2);
        let sender = {
            let producer = producer.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                producer.send_page(page());
            })
        };
        wait_any(&[&consumer], &[]);
        assert!(matches!(consumer.poll_data(), DataPoll::Message(_)));
        sender.join().unwrap();

        let replier = {
            let consumer = consumer.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                consumer.send_control(ControlMessage::EndOfStream);
            })
        };
        wait_any(&[], &[&producer]);
        assert!(matches!(
            producer.poll_control(),
            ControlPoll::Message(ControlMessage::EndOfStream)
        ));
        replier.join().unwrap();
        wait_any(&[], &[] /* no endpoints: returns immediately */);
    }
}
