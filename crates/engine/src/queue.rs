//! Inter-operator queues.
//!
//! A connection between two operators consists of a bounded *data queue* of
//! pages flowing downstream and an unbounded *control queue* flowing upstream
//! (feedback punctuation, result requests).  The bounded data queue provides
//! back-pressure: a fast producer blocks once the consumer falls behind by
//! `capacity` pages, which is how NiagaraST-style pipelined engines keep
//! memory bounded.  Control messages are never blocked — they are small,
//! high-priority and must overtake data (paper Section 5).
//!
//! Both endpoints implement `crossbeam_channel::SelectHandle`, so an
//! operator thread can park in a single condvar-based wait ([`wait_any`])
//! spanning all of its input data queues and downstream control channels —
//! the event-driven alternative to sleep-polling.  The `poll_*` methods
//! distinguish "nothing queued yet" from "peer endpoint gone", which the
//! executor's drain protocol relies on for prompt, loss-free teardown.
//!
//! The pooled executor uses a second connection flavour
//! ([`DataQueue::pooled_connection`]) whose readiness surface is
//! *notification*-based rather than *blocking*-based: instead of parking the
//! calling thread, each endpoint event (data available, downstream credit,
//! control pending) fires a persistent [`ReadyNotify`] hook registered per
//! task, which the scheduler uses to move the affected task back onto a run
//! queue.  Its data queue is **soft-bounded**: a producer may push past the
//! capacity within a single operator callback (sends never fail on a full
//! queue), but loses *credit* — [`PooledProducer::has_credit`] — until the
//! consumer drains back below the bound, and the scheduler stops stepping
//! the producer until credit returns.

use crate::control::ControlMessage;
use crate::page::Page;
use crossbeam_channel::{
    bounded, unbounded, Receiver, Select, SelectHandle, Sender, TryRecvError, TrySendError, Waker,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A message on the data queue.
#[derive(Debug, Clone)]
pub enum QueueMessage {
    /// A page of tuples and embedded punctuation.
    Page(Page),
    /// The producer is done; no more pages will follow.
    EndOfStream,
}

/// The outcome of a non-blocking receive on a data queue.
#[derive(Debug)]
pub enum DataPoll {
    /// A message was waiting.
    Message(QueueMessage),
    /// Nothing queued right now; the producer is still attached.
    Empty,
    /// The queue is empty and the producer endpoint has been dropped (the
    /// upstream thread exited).  Equivalent to end-of-stream.
    Closed,
}

/// The outcome of a non-blocking receive on a control channel.
#[derive(Debug)]
pub enum ControlPoll {
    /// A control message was waiting.
    Message(ControlMessage),
    /// Nothing queued right now; the consumer is still attached.
    Empty,
    /// The channel is empty and the consumer endpoint has been dropped (the
    /// downstream thread exited).  No further control can arrive.
    Closed,
}

/// Producer endpoint of a connection: sends pages downstream, receives control
/// messages from the consumer.
#[derive(Debug, Clone)]
pub struct ProducerEnd {
    data: Sender<QueueMessage>,
    control: Receiver<ControlMessage>,
}

/// Consumer endpoint of a connection: receives pages, sends control messages
/// (feedback) upstream.
#[derive(Debug, Clone)]
pub struct ConsumerEnd {
    data: Receiver<QueueMessage>,
    control: Sender<ControlMessage>,
}

/// A paged, bounded inter-operator queue with an unbounded upstream control
/// channel.
#[derive(Debug)]
pub struct DataQueue;

impl DataQueue {
    /// Default bound on in-flight pages per connection.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates a connection with the given page capacity, returning the
    /// producer and consumer endpoints.
    pub fn connection(capacity: usize) -> (ProducerEnd, ConsumerEnd) {
        let (data_tx, data_rx) = bounded(capacity.max(1));
        let (ctrl_tx, ctrl_rx) = unbounded();
        (
            ProducerEnd { data: data_tx, control: ctrl_rx },
            ConsumerEnd { data: data_rx, control: ctrl_tx },
        )
    }

    /// Creates a non-blocking, notification-driven connection for the pooled
    /// executor (see the module docs): soft-bounded data queue with credit
    /// tracking, unbounded control queue, and per-event [`ReadyNotify`]
    /// hooks.
    pub fn pooled_connection(capacity: usize) -> (PooledProducer, PooledConsumer) {
        let shared = Arc::new(PooledShared {
            capacity: capacity.max(1),
            data_len: AtomicUsize::new(0),
            ctrl_len: AtomicUsize::new(0),
            producer_alive: AtomicBool::new(true),
            consumer_alive: AtomicBool::new(true),
            data: Mutex::new(VecDeque::new()),
            control: Mutex::new(VecDeque::new()),
            on_data: OnceLock::new(),
            on_credit: OnceLock::new(),
            on_control: OnceLock::new(),
        });
        (PooledProducer { shared: shared.clone() }, PooledConsumer { shared })
    }
}

// ---------------------------------------------------------------------------
// Pooled (notification-driven) connection
// ---------------------------------------------------------------------------

/// A persistent readiness hook: the scheduler registers one per connection
/// event, and the endpoint fires it (from whichever thread performed the
/// state change) whenever the event makes the registered task runnable
/// again.  Implementations must be cheap and idempotent — a hook may fire
/// while its task is already queued or running.
pub trait ReadyNotify: Send + Sync {
    /// Signals that the registered task may have become runnable.
    fn notify(&self);
}

/// State shared by the two endpoints of a pooled connection.
struct PooledShared {
    capacity: usize,
    /// Number of queued data messages (pages + the end-of-stream marker).
    /// Kept as an atomic so `has_credit` / emptiness fast paths need no lock.
    data_len: AtomicUsize,
    ctrl_len: AtomicUsize,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    data: Mutex<VecDeque<QueueMessage>>,
    control: Mutex<VecDeque<ControlMessage>>,
    /// Fired when the data queue goes non-empty or the producer closes
    /// (wakes the consumer task).
    on_data: OnceLock<Arc<dyn ReadyNotify>>,
    /// Fired when the data queue drains back below capacity or the consumer
    /// closes (wakes the producer task).
    on_credit: OnceLock<Arc<dyn ReadyNotify>>,
    /// Fired when a control message arrives or the consumer closes (wakes
    /// the producer task).
    on_control: OnceLock<Arc<dyn ReadyNotify>>,
}

impl PooledShared {
    fn fire(hook: &OnceLock<Arc<dyn ReadyNotify>>) {
        if let Some(notify) = hook.get() {
            notify.notify();
        }
    }
}

impl std::fmt::Debug for PooledShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledShared")
            .field("capacity", &self.capacity)
            .field("data_len", &self.data_len.load(Ordering::Relaxed))
            .field("ctrl_len", &self.ctrl_len.load(Ordering::Relaxed))
            .field("producer_alive", &self.producer_alive.load(Ordering::Relaxed))
            .field("consumer_alive", &self.consumer_alive.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Producer endpoint of a pooled connection: pushes pages downstream without
/// blocking, polls control messages from the consumer.
#[derive(Debug, Clone)]
pub struct PooledProducer {
    shared: Arc<PooledShared>,
}

impl PooledProducer {
    /// Registers the hook fired when the data queue regains credit (wakes
    /// the producer's task).  Call once, before execution starts.
    pub fn set_on_credit(&self, notify: Arc<dyn ReadyNotify>) {
        let _ = self.shared.on_credit.set(notify);
    }

    /// Registers the hook fired when a control message arrives from the
    /// consumer (wakes the producer's task).  Call once, before execution
    /// starts.
    pub fn set_on_control(&self, notify: Arc<dyn ReadyNotify>) {
        let _ = self.shared.on_control.set(notify);
    }

    /// True while pushing another page would stay within the queue bound
    /// (or the consumer is gone, in which case the producer should step —
    /// its sends fail fast and it winds down).  The scheduler gates the
    /// producer's data steps on this.
    pub fn has_credit(&self) -> bool {
        !self.shared.consumer_alive.load(Ordering::Acquire)
            || self.shared.data_len.load(Ordering::Acquire) < self.shared.capacity
    }

    /// Pushes a page downstream.  Never blocks and never fails on a full
    /// queue (the bound is enforced through [`PooledProducer::has_credit`]);
    /// returns `false` when the consumer has closed its endpoint, i.e. the
    /// page is undeliverable.
    pub fn send_page(&self, page: Page) -> bool {
        if !self.shared.consumer_alive.load(Ordering::Acquire) {
            return false;
        }
        let was_empty = {
            let mut data = self.shared.data.lock();
            data.push_back(QueueMessage::Page(page));
            let len = data.len();
            self.shared.data_len.store(len, Ordering::Release);
            len == 1
        };
        if was_empty {
            PooledShared::fire(&self.shared.on_data);
        }
        true
    }

    /// Signals end-of-stream to the consumer.
    pub fn send_end_of_stream(&self) {
        if !self.shared.consumer_alive.load(Ordering::Acquire) {
            return;
        }
        let was_empty = {
            let mut data = self.shared.data.lock();
            data.push_back(QueueMessage::EndOfStream);
            let len = data.len();
            self.shared.data_len.store(len, Ordering::Release);
            len == 1
        };
        if was_empty {
            PooledShared::fire(&self.shared.on_data);
        }
    }

    /// Non-blocking receive of one control message, distinguishing "nothing
    /// yet" from "consumer gone".  Pending messages are delivered even after
    /// the consumer closed.
    pub fn poll_control(&self) -> ControlPoll {
        if self.shared.ctrl_len.load(Ordering::Acquire) == 0 {
            return if self.shared.consumer_alive.load(Ordering::Acquire) {
                ControlPoll::Empty
            } else {
                ControlPoll::Closed
            };
        }
        let mut control = self.shared.control.lock();
        match control.pop_front() {
            Some(message) => {
                self.shared.ctrl_len.store(control.len(), Ordering::Release);
                ControlPoll::Message(message)
            }
            None => {
                if self.shared.consumer_alive.load(Ordering::Acquire) {
                    ControlPoll::Empty
                } else {
                    ControlPoll::Closed
                }
            }
        }
    }

    /// Closes the producer endpoint: the consumer's polls report `Closed`
    /// once the queue is drained.  Used on failure teardown.
    pub fn close(&self) {
        self.shared.producer_alive.store(false, Ordering::Release);
        PooledShared::fire(&self.shared.on_data);
    }
}

/// Consumer endpoint of a pooled connection: polls pages, sends control
/// messages (feedback) upstream without blocking.
#[derive(Debug, Clone)]
pub struct PooledConsumer {
    shared: Arc<PooledShared>,
}

impl PooledConsumer {
    /// Registers the hook fired when data (or producer close) arrives (wakes
    /// the consumer's task).  Call once, before execution starts.
    pub fn set_on_data(&self, notify: Arc<dyn ReadyNotify>) {
        let _ = self.shared.on_data.set(notify);
    }

    /// Non-blocking receive of one data message, distinguishing "nothing
    /// yet" from "producer gone" (treated as end-of-stream).  Pending
    /// messages are delivered even after the producer closed.
    pub fn poll_data(&self) -> DataPoll {
        if self.shared.data_len.load(Ordering::Acquire) == 0 {
            return if self.shared.producer_alive.load(Ordering::Acquire) {
                DataPoll::Empty
            } else {
                DataPoll::Closed
            };
        }
        let (message, regained_credit) = {
            let mut data = self.shared.data.lock();
            let before = data.len();
            match data.pop_front() {
                Some(message) => {
                    let after = data.len();
                    self.shared.data_len.store(after, Ordering::Release);
                    // Credit exists only below capacity; soft-bounded
                    // overshoot may need several pops before the producer is
                    // runnable again.
                    (Some(message), before >= self.shared.capacity && after < self.shared.capacity)
                }
                None => (None, false),
            }
        };
        match message {
            Some(message) => {
                if regained_credit {
                    PooledShared::fire(&self.shared.on_credit);
                }
                DataPoll::Message(message)
            }
            None => {
                if self.shared.producer_alive.load(Ordering::Acquire) {
                    DataPoll::Empty
                } else {
                    DataPoll::Closed
                }
            }
        }
    }

    /// Sends a control message (feedback punctuation, result request, the
    /// end-of-stream handshake) upstream.  Never blocks; returns `false`
    /// when the producer endpoint has closed, i.e. the message is
    /// undeliverable.
    pub fn send_control(&self, message: ControlMessage) -> bool {
        if !self.shared.producer_alive.load(Ordering::Acquire) {
            return false;
        }
        {
            let mut control = self.shared.control.lock();
            control.push_back(message);
            self.shared.ctrl_len.store(control.len(), Ordering::Release);
        }
        PooledShared::fire(&self.shared.on_control);
        true
    }

    /// Number of pages currently buffered (approximate).
    pub fn pending(&self) -> usize {
        self.shared.data_len.load(Ordering::Acquire)
    }

    /// Closes the consumer endpoint: producer sends start failing and its
    /// control polls report `Closed` once drained.  Used on failure
    /// teardown; also grants the producer permanent credit so it can step
    /// and observe the failure.
    pub fn close(&self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
        PooledShared::fire(&self.shared.on_credit);
        PooledShared::fire(&self.shared.on_control);
    }
}

impl ProducerEnd {
    /// Sends a page downstream, blocking when the queue is full
    /// (back-pressure).  Returns `false` when the consumer has hung up.
    pub fn send_page(&self, page: Page) -> bool {
        self.data.send(QueueMessage::Page(page)).is_ok()
    }

    /// Attempts to send a page without blocking.  Returns the page back when
    /// the queue is full.
    pub fn try_send_page(&self, page: Page) -> Result<(), Page> {
        match self.data.try_send(QueueMessage::Page(page)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(QueueMessage::Page(p)))
            | Err(TrySendError::Disconnected(QueueMessage::Page(p))) => Err(p),
            Err(_) => unreachable!("only pages are try-sent"),
        }
    }

    /// Signals end-of-stream to the consumer.
    pub fn send_end_of_stream(&self) {
        let _ = self.data.send(QueueMessage::EndOfStream);
    }

    /// Non-blocking receive of one control message the consumer sent
    /// upstream, distinguishing "nothing yet" from "consumer gone".
    pub fn poll_control(&self) -> ControlPoll {
        match self.control.try_recv() {
            Ok(message) => ControlPoll::Message(message),
            Err(TryRecvError::Empty) => ControlPoll::Empty,
            Err(TryRecvError::Disconnected) => ControlPoll::Closed,
        }
    }

    /// Drains any control messages (feedback) the consumer has sent upstream.
    pub fn drain_control(&self) -> Vec<ControlMessage> {
        let mut msgs = Vec::new();
        while let Ok(m) = self.control.try_recv() {
            msgs.push(m);
        }
        msgs
    }
}

impl SelectHandle for ProducerEnd {
    fn is_ready(&self) -> bool {
        self.control.is_ready()
    }

    fn register(&self, waker: &Waker) {
        self.control.register(waker);
    }
}

impl ConsumerEnd {
    /// Attempts to receive the next data message without blocking.
    pub fn try_recv(&self) -> Option<QueueMessage> {
        self.data.try_recv().ok()
    }

    /// Non-blocking receive of one data message, distinguishing "nothing
    /// yet" from "producer gone" (which a consumer treats as end-of-stream).
    pub fn poll_data(&self) -> DataPoll {
        match self.data.try_recv() {
            Ok(message) => DataPoll::Message(message),
            Err(TryRecvError::Empty) => DataPoll::Empty,
            Err(TryRecvError::Disconnected) => DataPoll::Closed,
        }
    }

    /// Receives the next data message, blocking until one arrives or the
    /// producer hangs up.
    pub fn recv(&self) -> Option<QueueMessage> {
        self.data.recv().ok()
    }

    /// Sends a control message (feedback punctuation, result request)
    /// upstream.  Never blocks.  Returns `false` when the producer endpoint
    /// is gone (its thread exited), i.e. the message is undeliverable.
    pub fn send_control(&self, message: ControlMessage) -> bool {
        self.control.send(message).is_ok()
    }

    /// Number of pages currently buffered (approximate).
    pub fn pending(&self) -> usize {
        self.data.len()
    }
}

impl SelectHandle for ConsumerEnd {
    fn is_ready(&self) -> bool {
        self.data.is_ready()
    }

    fn register(&self, waker: &Waker) {
        self.data.register(waker);
    }
}

/// Blocks until any of the given endpoints is ready: a data message on some
/// consumer endpoint, or a control message (or hang-up) on some producer
/// endpoint.  This is the threaded executor's idle wait — operator threads
/// park here instead of sleep-polling.  No-ops when both slices are empty.
pub fn wait_any(inputs: &[&ConsumerEnd], outputs: &[&ProducerEnd]) {
    let mut select = Select::new();
    for input in inputs {
        select.watch(*input);
    }
    for output in outputs {
        select.watch(*output);
    }
    if inputs.is_empty() && outputs.is_empty() {
        return;
    }
    select.ready();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::StreamItem;
    use dsms_feedback::FeedbackPunctuation;
    use dsms_punctuation::Pattern;
    use dsms_types::{DataType, Schema, Tuple, Value};

    fn page() -> Page {
        let schema = Schema::shared(&[("v", DataType::Int)]);
        Page::from_items(vec![StreamItem::Tuple(Tuple::new(schema, vec![Value::Int(1)]))])
    }

    #[test]
    fn pages_flow_downstream_in_order() {
        let (producer, consumer) = DataQueue::connection(4);
        assert!(producer.send_page(page()));
        producer.send_end_of_stream();
        assert!(matches!(consumer.recv(), Some(QueueMessage::Page(_))));
        assert!(matches!(consumer.recv(), Some(QueueMessage::EndOfStream)));
    }

    #[test]
    fn control_messages_flow_upstream() {
        let (producer, consumer) = DataQueue::connection(4);
        let schema = Schema::shared(&[("v", DataType::Int)]);
        consumer.send_control(ControlMessage::Feedback(FeedbackPunctuation::assumed(
            Pattern::all_wildcards(schema),
            "consumer",
        )));
        consumer.send_control(ControlMessage::RequestResults);
        let drained = producer.drain_control();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].kind(), "feedback");
        assert_eq!(drained[1].kind(), "request-results");
        assert!(producer.drain_control().is_empty());
    }

    #[test]
    fn try_send_reports_full_queue() {
        let (producer, consumer) = DataQueue::connection(1);
        assert!(producer.try_send_page(page()).is_ok());
        assert!(producer.try_send_page(page()).is_err(), "capacity 1 queue is full");
        assert_eq!(consumer.pending(), 1);
        assert!(consumer.try_recv().is_some());
        assert!(consumer.try_recv().is_none());
    }

    #[test]
    fn hung_up_consumer_is_reported() {
        let (producer, consumer) = DataQueue::connection(1);
        drop(consumer);
        assert!(!producer.send_page(page()));
    }

    #[test]
    fn polls_distinguish_empty_from_closed() {
        let (producer, consumer) = DataQueue::connection(2);
        assert!(matches!(consumer.poll_data(), DataPoll::Empty));
        assert!(matches!(producer.poll_control(), ControlPoll::Empty));
        producer.send_page(page());
        assert!(consumer.send_control(ControlMessage::RequestResults));
        assert!(matches!(consumer.poll_data(), DataPoll::Message(QueueMessage::Page(_))));
        assert!(matches!(
            producer.poll_control(),
            ControlPoll::Message(ControlMessage::RequestResults)
        ));
        drop(producer);
        assert!(matches!(consumer.poll_data(), DataPoll::Closed));
        assert!(!consumer.send_control(ControlMessage::EndOfStream), "producer gone");
        let (producer, consumer) = DataQueue::connection(2);
        drop(consumer);
        assert!(matches!(producer.poll_control(), ControlPoll::Closed));
    }

    #[test]
    fn pooled_connection_tracks_credit_and_fires_hooks() {
        struct Flag(AtomicBool);
        impl ReadyNotify for Flag {
            fn notify(&self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let (producer, consumer) = DataQueue::pooled_connection(2);
        let on_data = Arc::new(Flag(AtomicBool::new(false)));
        let on_credit = Arc::new(Flag(AtomicBool::new(false)));
        let on_control = Arc::new(Flag(AtomicBool::new(false)));
        consumer.set_on_data(on_data.clone());
        producer.set_on_credit(on_credit.clone());
        producer.set_on_control(on_control.clone());

        assert!(producer.has_credit());
        assert!(matches!(consumer.poll_data(), DataPoll::Empty));
        assert!(producer.send_page(page()));
        assert!(on_data.0.swap(false, Ordering::SeqCst), "0→1 fires on_data");
        assert!(producer.send_page(page()));
        assert!(!on_data.0.load(Ordering::SeqCst), "1→2 does not re-fire");
        assert!(!producer.has_credit(), "at capacity");
        // Soft bound: a third push succeeds anyway.
        assert!(producer.send_page(page()));
        assert_eq!(consumer.pending(), 3);

        // Credit returns only once the queue drains below capacity.
        assert!(matches!(consumer.poll_data(), DataPoll::Message(QueueMessage::Page(_))));
        assert!(!on_credit.0.load(Ordering::SeqCst), "3→2 is still at the bound");
        assert!(matches!(consumer.poll_data(), DataPoll::Message(_)));
        assert!(on_credit.0.swap(false, Ordering::SeqCst), "2→1 crosses below capacity");
        assert!(producer.has_credit());

        assert!(consumer.send_control(ControlMessage::RequestResults));
        assert!(on_control.0.swap(false, Ordering::SeqCst));
        assert!(matches!(
            producer.poll_control(),
            ControlPoll::Message(ControlMessage::RequestResults)
        ));
        assert!(matches!(producer.poll_control(), ControlPoll::Empty));
    }

    #[test]
    fn pooled_close_drains_pending_then_reports_closed() {
        let (producer, consumer) = DataQueue::pooled_connection(1);
        producer.send_page(page());
        producer.send_end_of_stream();
        producer.close();
        // Pending messages survive the close…
        assert!(matches!(consumer.poll_data(), DataPoll::Message(QueueMessage::Page(_))));
        assert!(matches!(consumer.poll_data(), DataPoll::Message(QueueMessage::EndOfStream)));
        // …then the hang-up is visible.
        assert!(matches!(consumer.poll_data(), DataPoll::Closed));
        assert!(!consumer.send_control(ControlMessage::EndOfStream), "producer gone");

        let (producer, consumer) = DataQueue::pooled_connection(1);
        consumer.send_control(ControlMessage::RequestResults);
        consumer.close();
        assert!(producer.has_credit(), "dead consumer grants permanent credit");
        assert!(!producer.send_page(page()), "consumer gone");
        assert!(matches!(
            producer.poll_control(),
            ControlPoll::Message(ControlMessage::RequestResults)
        ));
        assert!(matches!(producer.poll_control(), ControlPoll::Closed));
    }

    #[test]
    fn wait_any_wakes_on_data_and_on_control() {
        let (producer, consumer) = DataQueue::connection(2);
        let sender = {
            let producer = producer.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                producer.send_page(page());
            })
        };
        wait_any(&[&consumer], &[]);
        assert!(matches!(consumer.poll_data(), DataPoll::Message(_)));
        sender.join().unwrap();

        let replier = {
            let consumer = consumer.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                consumer.send_control(ControlMessage::EndOfStream);
            })
        };
        wait_any(&[], &[&producer]);
        assert!(matches!(
            producer.poll_control(),
            ControlPoll::Message(ControlMessage::EndOfStream)
        ));
        replier.join().unwrap();
        wait_any(&[], &[] /* no endpoints: returns immediately */);
    }
}
