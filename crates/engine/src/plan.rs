//! Query-plan construction.
//!
//! A [`QueryPlan`] is a directed acyclic graph of operators.  Edges connect an
//! output port of one operator to an input port of another and become
//! page-based data queues (downstream) paired with control channels
//! (upstream) at execution time.

use crate::error::{EngineError, EngineResult};
use crate::operator::Operator;
use crate::page::PageBuilder;
use crate::queue::DataQueue;

/// Identifier of an operator node within a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's position in the plan's node list (also its index into the
    /// [`PlanParts::nodes`] vector after [`QueryPlan::into_parts`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One node of a dismantled plan — see [`QueryPlan::into_parts`].
pub struct PlanNode {
    /// The operator's display name at the time the plan was dismantled.
    pub name: String,
    /// The operator itself, ready to be re-added to another plan.
    pub operator: Box<dyn Operator>,
}

/// A [`QueryPlan`] broken into its parts for re-composition.
///
/// A multi-query manager consumes registered plans this way: it takes each
/// plan apart, drops the nodes that duplicate an already-instantiated shared
/// prefix, and re-adds the rest to one master plan with the edges remapped.
/// [`Edge`] endpoints index into `nodes` via [`NodeId::index`].
pub struct PlanParts {
    /// The operators, in their original node-id order.
    pub nodes: Vec<PlanNode>,
    /// The connections between them (endpoints index into `nodes`).
    pub edges: Vec<Edge>,
    /// The plan's tuples-per-page capacity.
    pub page_capacity: usize,
    /// The plan's pages-in-flight bound.
    pub queue_capacity: usize,
    /// The plan's pooled-executor worker count, if configured.
    pub pool_size: Option<usize>,
    /// Per-node recovery policies, in node-id order.
    pub recovery: Vec<RecoveryPolicy>,
    /// Per-node quarantine flags, in node-id order.
    pub quarantine: Vec<bool>,
}

/// What the executor does when an operator's data-path callback fails
/// (returns an error or panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Abort the run with a named [`EngineError::OperatorFailed`] (the
    /// default, and the only behaviour before supervised recovery existed).
    #[default]
    FailFast,
    /// Restore the operator's last punctuation-epoch checkpoint and replay
    /// the retained post-checkpoint input suffix, up to `max_restarts` times.
    /// Each retry sleeps `backoff × attempt` first (attempt counting from 1;
    /// `Duration::ZERO` retries immediately — the right choice for the sync
    /// executor and for tests).  An operator under this policy must declare
    /// [`Operator::restartable`].
    Restart {
        /// Restart budget; once exhausted the failure becomes terminal
        /// (fail-fast abort, or a tombstone when the node is quarantined).
        max_restarts: u32,
        /// Base delay between attempts, scaled linearly by attempt number.
        backoff: std::time::Duration,
    },
}

/// A connection between two operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing node.
    pub from: NodeId,
    /// Output port on the producing node.
    pub from_port: usize,
    /// Consuming node.
    pub to: NodeId,
    /// Input port on the consuming node.
    pub to_port: usize,
}

pub(crate) struct Node {
    pub(crate) name: String,
    pub(crate) inputs: usize,
    pub(crate) outputs: usize,
    pub(crate) operator: Box<dyn Operator>,
}

/// A directed acyclic graph of operators, ready to be executed.
///
/// The `Debug` rendering summarizes shape only (operators are trait objects);
/// use [`QueryPlan::dot`] for a full structural dump.
pub struct QueryPlan {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) page_capacity: usize,
    pub(crate) queue_capacity: usize,
    pub(crate) pool_size: Option<usize>,
    /// node index → preferred pooled-executor worker (hint, taken modulo the
    /// actual pool size).  Kept in lockstep with `nodes` by `add_boxed`.
    pub(crate) pins: Vec<Option<usize>>,
    /// node index → recovery policy.  Kept in lockstep with `nodes`.
    pub(crate) recovery: Vec<RecoveryPolicy>,
    /// node index → quarantine flag: when set, a terminal failure of the
    /// node tombstones it (drains its branch, records the failure in its
    /// metrics) instead of aborting the whole run.  Kept in lockstep with
    /// `nodes`.
    pub(crate) quarantine: Vec<bool>,
    /// Punctuation-epoch length between checkpoints for operators under a
    /// `Restart` policy; 0 disables checkpointing (restarts restore the
    /// initial state and replay everything retained).
    pub(crate) checkpoint_interval: u64,
}

impl Default for QueryPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPlan")
            .field("nodes", &self.nodes.iter().map(|n| n.name.as_str()).collect::<Vec<_>>())
            .field("edges", &self.edges)
            .field("page_capacity", &self.page_capacity)
            .field("queue_capacity", &self.queue_capacity)
            .field("pool_size", &self.pool_size)
            .finish()
    }
}

impl QueryPlan {
    /// Creates an empty plan with default page and queue capacities.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::QueryPlan;
    ///
    /// let plan = QueryPlan::new().with_page_capacity(64).with_queue_capacity(8);
    /// assert_eq!(plan.node_count(), 0);
    /// assert_eq!(plan.page_capacity(), 64);
    /// assert_eq!(plan.queue_capacity(), 8);
    /// // `Default` is equivalent to `new()`.
    /// assert_eq!(QueryPlan::default().page_capacity(), QueryPlan::new().page_capacity());
    /// ```
    pub fn new() -> Self {
        QueryPlan {
            nodes: Vec::new(),
            edges: Vec::new(),
            page_capacity: PageBuilder::DEFAULT_CAPACITY,
            queue_capacity: DataQueue::DEFAULT_CAPACITY,
            pool_size: None,
            pins: Vec::new(),
            recovery: Vec::new(),
            quarantine: Vec::new(),
            checkpoint_interval: Self::DEFAULT_CHECKPOINT_INTERVAL,
        }
    }

    /// Default punctuation-epoch length between checkpoints (see
    /// [`QueryPlan::with_checkpoint_interval`]).
    pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 4;

    /// Sets the tuples-per-page capacity used on every connection.
    pub fn with_page_capacity(mut self, capacity: usize) -> Self {
        self.page_capacity = capacity.max(1);
        self
    }

    /// Sets the pages-in-flight bound used on every connection (threaded
    /// executor back-pressure).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// The tuples-per-page capacity.
    pub fn page_capacity(&self) -> usize {
        self.page_capacity
    }

    /// The pages-in-flight bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Sets the number of worker threads the pooled executor should run this
    /// plan with.  Clamped to at least 1; the sync and threaded executors
    /// ignore it.  When unset, [`crate::pooled::PooledExecutor`] defaults to
    /// the machine's available parallelism.
    pub fn with_worker_pool(mut self, workers: usize) -> Self {
        self.pool_size = Some(workers.max(1));
        self
    }

    /// The configured pooled-executor worker count, if any.
    pub fn worker_pool(&self) -> Option<usize> {
        self.pool_size
    }

    /// Pins an operator to a preferred pooled-executor worker.  A *hint*, not
    /// an assignment: the pin picks the operator's home run queue (modulo the
    /// actual pool size), but idle workers may still steal the task.  Useful
    /// to co-locate a chain of operators so pages flow between them without
    /// crossing workers, or to spread known-heavy operators apart.
    pub fn pin_to_worker(&mut self, node: NodeId, worker: usize) -> EngineResult<()> {
        match self.pins.get_mut(node.0) {
            Some(slot) => {
                *slot = Some(worker);
                Ok(())
            }
            None => Err(EngineError::InvalidPlan {
                detail: format!(
                    "cannot pin {node:?} to worker {worker}: the node does not exist (the plan \
                     has {} nodes)",
                    self.nodes.len()
                ),
            }),
        }
    }

    /// The worker an operator is pinned to, if any.
    pub fn worker_pin(&self, node: NodeId) -> Option<usize> {
        self.pins.get(node.0).copied().flatten()
    }

    /// Sets the recovery policy for an operator (the default is
    /// [`RecoveryPolicy::FailFast`]).  [`QueryPlan::validate`] rejects a
    /// `Restart` policy on an operator that does not declare
    /// [`Operator::restartable`].
    pub fn set_recovery(&mut self, node: NodeId, policy: RecoveryPolicy) -> EngineResult<()> {
        match self.recovery.get_mut(node.0) {
            Some(slot) => {
                *slot = policy;
                Ok(())
            }
            None => Err(EngineError::InvalidPlan {
                detail: format!(
                    "cannot set a recovery policy on {node:?}: the node does not exist (the plan \
                     has {} nodes)",
                    self.nodes.len()
                ),
            }),
        }
    }

    /// The recovery policy of an operator ([`RecoveryPolicy::FailFast`] when
    /// never set).
    pub fn recovery_policy(&self, node: NodeId) -> RecoveryPolicy {
        self.recovery.get(node.0).copied().unwrap_or_default()
    }

    /// Marks an operator as quarantinable: a terminal failure (fail-fast, or
    /// a `Restart` budget exhausted) tombstones the node — its branch is
    /// drained cleanly and the failure recorded in the node's metrics
    /// ([`crate::OperatorMetrics::failure`]) — instead of aborting the whole
    /// run.  A multi-query manager sets this on every private node of a
    /// registered query so one query's failure cannot take down its
    /// siblings.
    pub fn set_quarantine(&mut self, node: NodeId, quarantine: bool) -> EngineResult<()> {
        match self.quarantine.get_mut(node.0) {
            Some(slot) => {
                *slot = quarantine;
                Ok(())
            }
            None => Err(EngineError::InvalidPlan {
                detail: format!(
                    "cannot quarantine {node:?}: the node does not exist (the plan has {} nodes)",
                    self.nodes.len()
                ),
            }),
        }
    }

    /// Whether an operator is quarantinable.
    pub fn quarantined_on_failure(&self, node: NodeId) -> bool {
        self.quarantine.get(node.0).copied().unwrap_or(false)
    }

    /// Sets the punctuation-epoch length between checkpoints for operators
    /// under a [`RecoveryPolicy::Restart`] policy: a checkpoint is taken once
    /// an operator has consumed `interval` punctuations since its last one,
    /// aligning snapshots with the stream's punctuation epochs (the same
    /// consistent-cut idea the elastic repartitioning handshake uses).  0
    /// disables checkpointing entirely.
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// The punctuation-epoch checkpoint interval (0 = disabled).
    pub fn checkpoint_interval(&self) -> u64 {
        self.checkpoint_interval
    }

    /// Adds an operator to the plan, returning its node id.
    pub fn add(&mut self, operator: impl Operator + 'static) -> NodeId {
        self.add_boxed(Box::new(operator))
    }

    /// Adds an already-boxed operator to the plan.
    pub fn add_boxed(&mut self, operator: Box<dyn Operator>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: operator.name().to_string(),
            inputs: operator.inputs(),
            outputs: operator.outputs(),
            operator,
        });
        self.pins.push(None);
        self.recovery.push(RecoveryPolicy::FailFast);
        self.quarantine.push(false);
        id
    }

    /// Connects output port `from_port` of `from` to input port `to_port` of
    /// `to`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::{EngineResult, Operator, OperatorContext, QueryPlan};
    /// use dsms_types::Tuple;
    ///
    /// /// A pass-through operator with one input and one output.
    /// struct Pass;
    ///
    /// impl Operator for Pass {
    ///     fn name(&self) -> &str {
    ///         "pass"
    ///     }
    ///     fn inputs(&self) -> usize {
    ///         1
    ///     }
    ///     fn on_tuple(&mut self, _: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
    ///         ctx.emit(0, t);
    ///         Ok(())
    ///     }
    /// }
    ///
    /// let mut plan = QueryPlan::new();
    /// let a = plan.add(Pass);
    /// let b = plan.add(Pass);
    /// plan.connect(a, 0, b, 0)?; // equivalently: plan.connect_simple(a, b)?
    /// assert_eq!(plan.edge_count(), 1);
    /// // A second consumer on the same output port is rejected:
    /// let c = plan.add(Pass);
    /// assert!(plan.connect(a, 0, c, 0).is_err());
    /// # Ok::<(), dsms_engine::EngineError>(())
    /// ```
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
    ) -> EngineResult<()> {
        // Name both endpoints wherever possible: a connection error should
        // read "`source` -> `sink`", not a pair of bare node ids.
        let describe = |id: NodeId| match self.nodes.get(id.0) {
            Some(node) => format!("`{}`", node.name),
            None => format!("{id:?}"),
        };
        let from_node = self.nodes.get(from.0).ok_or_else(|| EngineError::InvalidPlan {
            detail: format!(
                "cannot connect {} -> {}: source node {:?} does not exist (the plan has {} nodes)",
                describe(from),
                describe(to),
                from,
                self.nodes.len()
            ),
        })?;
        let to_node = self.nodes.get(to.0).ok_or_else(|| EngineError::InvalidPlan {
            detail: format!(
                "cannot connect `{}` -> {}: target node {:?} does not exist (the plan has {} \
                 nodes)",
                from_node.name,
                describe(to),
                to,
                self.nodes.len()
            ),
        })?;
        if from_port >= from_node.outputs {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "operator `{}` has {} outputs, port {} does not exist",
                    from_node.name, from_node.outputs, from_port
                ),
            });
        }
        if to_port >= to_node.inputs {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "operator `{}` has {} inputs, port {} does not exist",
                    to_node.name, to_node.inputs, to_port
                ),
            });
        }
        if self.edges.iter().any(|e| e.from == from && e.from_port == from_port) {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "output port {from_port} of `{}` is already connected",
                    from_node.name
                ),
            });
        }
        if self.edges.iter().any(|e| e.to == to && e.to_port == to_port) {
            return Err(EngineError::InvalidPlan {
                detail: format!("input port {to_port} of `{}` is already connected", to_node.name),
            });
        }
        self.edges.push(Edge { from, from_port, to, to_port });
        Ok(())
    }

    /// Convenience: connect port 0 to port 0.
    pub fn connect_simple(&mut self, from: NodeId, to: NodeId) -> EngineResult<()> {
        self.connect(from, 0, to, 0)
    }

    /// Number of operators.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of connections.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The name of a node.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(id.0).map(|n| n.name.as_str())
    }

    /// The edges of the plan.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Validates the plan: every input port of every operator must be
    /// connected, and the graph must be acyclic.  (Unconnected *output* ports
    /// are allowed — their emissions are discarded — so sinks are simply
    /// operators with zero outputs or unconnected outputs.)  Operators that
    /// declare [`Operator::must_connect_all_outputs`] — hash partitioners,
    /// whose unconnected ports would silently drop whole partitions — are
    /// additionally required to have every output port connected.
    pub fn validate(&self) -> EngineResult<()> {
        for (idx, node) in self.nodes.iter().enumerate() {
            for port in 0..node.inputs {
                let connected = self.edges.iter().any(|e| e.to == NodeId(idx) && e.to_port == port);
                if !connected {
                    return Err(EngineError::InvalidPlan {
                        detail: format!("input port {port} of `{}` is not connected", node.name),
                    });
                }
            }
            if matches!(self.recovery.get(idx), Some(RecoveryPolicy::Restart { .. }))
                && !node.operator.restartable()
            {
                return Err(EngineError::InvalidPlan {
                    detail: format!(
                        "`{}` has a Restart recovery policy but is not restartable — the \
                         operator must implement checkpoint/restore (and must not hold \
                         unreplayable obligations such as builder-level feedback \
                         subscriptions) to be supervised",
                        node.name
                    ),
                });
            }
            if node.operator.must_connect_all_outputs() {
                let connected = self.edges.iter().filter(|e| e.from == NodeId(idx)).count();
                if connected != node.outputs {
                    return Err(EngineError::InvalidPlan {
                        detail: format!(
                            "`{}` routes its input across {} output partitions but only {} are \
                             connected — every partition must be wired to a replica, or tuples \
                             hashed to the dangling ports would be lost",
                            node.name, node.outputs, connected
                        ),
                    });
                }
            }
        }
        // Kahn's algorithm for cycle detection.
        let mut in_degree = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            in_degree[e.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..self.nodes.len()).filter(|i| in_degree[*i] == 0).collect();
        let mut visited = 0;
        while let Some(n) = queue.pop() {
            visited += 1;
            for e in self.edges.iter().filter(|e| e.from.0 == n) {
                in_degree[e.to.0] -= 1;
                if in_degree[e.to.0] == 0 {
                    queue.push(e.to.0);
                }
            }
        }
        if visited != self.nodes.len() {
            // Nodes with residual in-degree are on a cycle *or merely
            // downstream of one; strip the innocent tail (repeatedly remove
            // residual nodes with no successor left in the residual set) so
            // the error names only nodes actually on a cycle.
            let mut residual: Vec<bool> = in_degree.iter().map(|d| *d > 0).collect();
            loop {
                let removable: Vec<usize> = (0..self.nodes.len())
                    .filter(|&i| {
                        residual[i] && !self.edges.iter().any(|e| e.from.0 == i && residual[e.to.0])
                    })
                    .collect();
                if removable.is_empty() {
                    break;
                }
                for i in removable {
                    residual[i] = false;
                }
            }
            let trapped: Vec<String> = residual
                .iter()
                .enumerate()
                .filter(|(_, on_cycle)| **on_cycle)
                .map(|(i, _)| format!("`{}`", self.nodes[i].name))
                .collect();
            return Err(EngineError::InvalidPlan {
                detail: format!("plan contains a cycle through {}", trapped.join(", ")),
            });
        }
        Ok(())
    }

    /// Renders the plan as a Graphviz `dot` digraph for debugging — data
    /// edges solid (labelled with their ports), feedback (control) edges
    /// dashed and drawn *against* the data flow wherever the consumer side of
    /// an edge declares it produces or relays feedback and the producer side
    /// declares a feedback port to receive it.  Node labels carry the
    /// operator's declared feedback roles.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsms_engine::QueryPlan;
    ///
    /// let plan = QueryPlan::new();
    /// let dot = plan.dot();
    /// assert!(dot.starts_with("digraph plan {"));
    /// assert!(dot.trim_end().ends_with('}'));
    /// ```
    pub fn dot(&self) -> String {
        use std::fmt::Write as _;
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::from("digraph plan {\n  rankdir=LR;\n  node [shape=box];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let roles = node.operator.feedback_roles();
            if roles.is_none() {
                let _ = writeln!(out, "  n{i} [label=\"{}\"];", escape(&node.name));
            } else {
                let _ = writeln!(out, "  n{i} [label=\"{}\\n[{roles}]\"];", escape(&node.name));
            }
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}:{}\"];",
                e.from.0, e.to.0, e.from_port, e.to_port
            );
        }
        // One dashed control edge per node pair, even when parallel data
        // edges connect the same operators (e.g. a split feeding both of a
        // union's inputs): the control channel is per-connection, but the
        // debug rendering reads better with one arrow per logical path.
        let mut feedback_pairs = std::collections::HashSet::new();
        for e in &self.edges {
            let consumer = self.nodes[e.to.0].operator.feedback_roles();
            let producer = self.nodes[e.from.0].operator.feedback_roles();
            if (consumer.produces() || consumer.relays())
                && producer.accepts_feedback()
                && feedback_pairs.insert((e.to.0, e.from.0))
            {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style=dashed, constraint=false, label=\"¬?!\"];",
                    e.to.0, e.from.0
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// The nodes with zero input ports (the plan's sources), in node order.
    pub fn source_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].inputs == 0).map(NodeId).collect()
    }

    /// The maximal dedupe-able prefix chain starting at `from`, as
    /// `(node, cumulative fingerprint)` pairs.
    ///
    /// The chain begins at `from` (usually a source) and extends through
    /// single-input/single-output operators that declare an
    /// [`Operator::fingerprint`], following the unique data edge out of each
    /// node.  Each entry's hash folds the node's own fingerprint into the
    /// hash of everything before it, so two plans whose chains end in equal
    /// hashes at equal depths have **identical** prefixes and can share one
    /// execution of them.  The chain ends — and the returned vector stops —
    /// at the first operator that is unfingerprinted (subscription wrappers,
    /// sinks, stateful operators), has more than one input or output (joins,
    /// splits), or feeds more than one consumer.  Returns an empty vector
    /// when `from` itself declares no fingerprint.
    pub fn prefix_chain(&self, from: NodeId) -> Vec<(NodeId, u64)> {
        use std::hash::{Hash, Hasher};
        let mut chain = Vec::new();
        let mut hash = 0u64;
        let mut current = from;
        while let Some(node) = self.nodes.get(current.0) {
            let fingerprint = match node.operator.fingerprint() {
                Some(f) => f,
                None => break,
            };
            // Chains are linear: one output port feeding exactly one consumer
            // (the first link may be a source; later links are 1-in/1-out).
            if node.outputs != 1 || (!chain.is_empty() && node.inputs != 1) {
                break;
            }
            let mut hasher = dsms_types::FixedHasher::new();
            hash.hash(&mut hasher);
            fingerprint.hash(&mut hasher);
            hash = hasher.finish();
            chain.push((current, hash));
            let mut consumers = self.edges.iter().filter(|e| e.from == current);
            match (consumers.next(), consumers.next()) {
                (Some(edge), None) => current = edge.to,
                _ => break,
            }
        }
        chain
    }

    /// Dismantles the plan into its [`PlanParts`] for re-composition into
    /// another plan (see the `PlanParts` docs).  The plan is consumed; edges
    /// keep indexing the returned node vector via [`NodeId::index`].
    pub fn into_parts(self) -> PlanParts {
        PlanParts {
            nodes: self
                .nodes
                .into_iter()
                .map(|n| PlanNode { name: n.name, operator: n.operator })
                .collect(),
            edges: self.edges,
            page_capacity: self.page_capacity,
            queue_capacity: self.queue_capacity,
            pool_size: self.pool_size,
            recovery: self.recovery,
            quarantine: self.quarantine,
        }
    }

    /// Returns the node ids in a topological order (sources first).  The plan
    /// must be valid.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let mut in_degree = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            in_degree[e.to.0] += 1;
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..self.nodes.len()).filter(|i| in_degree[*i] == 0).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop_front() {
            order.push(NodeId(n));
            for e in self.edges.iter().filter(|e| e.from.0 == n) {
                in_degree[e.to.0] -= 1;
                if in_degree[e.to.0] == 0 {
                    queue.push_back(e.to.0);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OperatorContext, SourceState};
    use dsms_types::Tuple;

    struct Dummy {
        name: String,
        inputs: usize,
        outputs: usize,
    }

    impl Dummy {
        fn new(name: &str, inputs: usize, outputs: usize) -> Self {
            Dummy { name: name.into(), inputs, outputs }
        }
    }

    impl Operator for Dummy {
        fn name(&self) -> &str {
            &self.name
        }
        fn inputs(&self) -> usize {
            self.inputs
        }
        fn outputs(&self) -> usize {
            self.outputs
        }
        fn on_tuple(&mut self, _i: usize, _t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
            Ok(())
        }
        fn poll_source(&mut self, _c: &mut OperatorContext) -> EngineResult<SourceState> {
            Ok(if self.inputs == 0 { SourceState::Exhausted } else { SourceState::NotASource })
        }
    }

    #[test]
    fn build_and_validate_linear_plan() {
        let mut plan = QueryPlan::new();
        let src = plan.add(Dummy::new("source", 0, 1));
        let map = plan.add(Dummy::new("map", 1, 1));
        let sink = plan.add(Dummy::new("sink", 1, 0));
        plan.connect_simple(src, map).unwrap();
        plan.connect_simple(map, sink).unwrap();
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.edge_count(), 2);
        plan.validate().unwrap();
        let order = plan.topological_order();
        assert_eq!(order.first(), Some(&src));
        assert_eq!(order.last(), Some(&sink));
        assert_eq!(plan.node_name(map), Some("map"));
    }

    #[test]
    fn unconnected_input_is_rejected() {
        let mut plan = QueryPlan::new();
        let _src = plan.add(Dummy::new("source", 0, 1));
        let _map = plan.add(Dummy::new("map", 1, 1));
        let err = plan.validate().unwrap_err();
        assert!(matches!(err, EngineError::InvalidPlan { .. }));
    }

    #[test]
    fn double_connection_is_rejected() {
        let mut plan = QueryPlan::new();
        let src = plan.add(Dummy::new("source", 0, 1));
        let a = plan.add(Dummy::new("a", 1, 1));
        let b = plan.add(Dummy::new("b", 1, 1));
        plan.connect_simple(src, a).unwrap();
        assert!(plan.connect_simple(src, b).is_err(), "output port reused");
        let src2 = plan.add(Dummy::new("source2", 0, 1));
        assert!(plan.connect_simple(src2, a).is_err(), "input port reused");
    }

    #[test]
    fn invalid_ports_are_rejected() {
        let mut plan = QueryPlan::new();
        let src = plan.add(Dummy::new("source", 0, 1));
        let sink = plan.add(Dummy::new("sink", 1, 0));
        assert!(plan.connect(src, 1, sink, 0).is_err());
        assert!(plan.connect(src, 0, sink, 3).is_err());
        assert!(plan.connect(NodeId(99), 0, sink, 0).is_err());
        assert!(plan.connect(src, 0, NodeId(99), 0).is_err());
    }

    #[test]
    fn unknown_node_errors_name_the_known_operator() {
        let mut plan = QueryPlan::new();
        let src = plan.add(Dummy::new("source", 0, 1));
        let sink = plan.add(Dummy::new("sink", 1, 0));

        let err = plan.connect_simple(src, NodeId(99)).unwrap_err().to_string();
        assert_eq!(
            err,
            "invalid plan: cannot connect `source` -> NodeId(99): target node NodeId(99) does \
             not exist (the plan has 2 nodes)"
        );
        let err = plan.connect_simple(NodeId(42), sink).unwrap_err().to_string();
        assert_eq!(
            err,
            "invalid plan: cannot connect NodeId(42) -> `sink`: source node NodeId(42) does not \
             exist (the plan has 2 nodes)"
        );
    }

    #[test]
    fn cycle_errors_name_the_trapped_operators() {
        let mut plan = QueryPlan::new();
        let a = plan.add(Dummy::new("alpha", 1, 1));
        let b = plan.add(Dummy::new("beta", 1, 1));
        plan.connect_simple(a, b).unwrap();
        plan.connect_simple(b, a).unwrap();
        let err = plan.validate().unwrap_err().to_string();
        assert!(err.contains("cycle"), "{err}");
        assert!(err.contains("`alpha`") && err.contains("`beta`"), "{err}");
    }

    #[test]
    fn cycle_errors_exclude_innocent_downstream_operators() {
        let mut plan = QueryPlan::new();
        let a = plan.add(Dummy::new("alpha", 1, 2));
        let b = plan.add(Dummy::new("beta", 1, 1));
        let sink = plan.add(Dummy::new("innocent-sink", 1, 0));
        plan.connect(a, 0, b, 0).unwrap();
        plan.connect(b, 0, a, 0).unwrap();
        // The sink hangs off the cycle but is not on it.
        plan.connect(a, 1, sink, 0).unwrap();
        let err = plan.validate().unwrap_err().to_string();
        assert!(err.contains("`alpha`") && err.contains("`beta`"), "{err}");
        assert!(!err.contains("innocent-sink"), "{err}");
    }

    #[test]
    fn dot_export_renders_nodes_data_edges_and_dashed_feedback_edges() {
        use dsms_feedback::FeedbackRoles;

        /// Consumer that declares it produces feedback (so the dot export
        /// draws a dashed control edge back to its producer).
        struct FeedbackSink;
        impl Operator for FeedbackSink {
            fn name(&self) -> &str {
                "display"
            }
            fn inputs(&self) -> usize {
                1
            }
            fn outputs(&self) -> usize {
                0
            }
            fn feedback_roles(&self) -> FeedbackRoles {
                FeedbackRoles::producer()
            }
            fn on_tuple(
                &mut self,
                _i: usize,
                _t: Tuple,
                _c: &mut OperatorContext,
            ) -> EngineResult<()> {
                Ok(())
            }
        }

        /// Producer that declares a feedback port (exploiter).
        struct FeedbackSource;
        impl Operator for FeedbackSource {
            fn name(&self) -> &str {
                "sensors"
            }
            fn inputs(&self) -> usize {
                0
            }
            fn feedback_roles(&self) -> FeedbackRoles {
                FeedbackRoles::exploiter()
            }
            fn on_tuple(
                &mut self,
                _i: usize,
                _t: Tuple,
                _c: &mut OperatorContext,
            ) -> EngineResult<()> {
                Ok(())
            }
            fn poll_source(&mut self, _c: &mut OperatorContext) -> EngineResult<SourceState> {
                Ok(SourceState::Exhausted)
            }
        }

        let mut plan = QueryPlan::new();
        let src = plan.add(FeedbackSource);
        let unaware = plan.add(Dummy::new("relay \"quoted\"", 1, 1));
        let sink = plan.add(FeedbackSink);
        plan.connect_simple(src, unaware).unwrap();
        plan.connect_simple(unaware, sink).unwrap();

        let dot = plan.dot();
        assert!(dot.starts_with("digraph plan {"), "{dot}");
        assert!(dot.contains("n0 [label=\"sensors\\n[exploiter]\"];"), "{dot}");
        assert!(dot.contains("n1 [label=\"relay \\\"quoted\\\"\"];"), "{dot}");
        assert!(dot.contains("n2 [label=\"display\\n[producer]\"];"), "{dot}");
        assert!(dot.contains("n0 -> n1 [label=\"0:0\"];"), "{dot}");
        assert!(dot.contains("n1 -> n2 [label=\"0:0\"];"), "{dot}");
        // The display produces feedback, but its direct antecedent is
        // feedback-unaware: no dashed edge display -> relay…
        assert!(!dot.contains("n2 -> n1"), "{dot}");
        // …and the unaware relay cannot send anything to the source either.
        assert!(!dot.contains("n1 -> n0"), "{dot}");
        assert!(!dot.contains("style=dashed"), "{dot}");

        // Replace the unaware relay with a feedback-aware chain: now both
        // hops carry dashed control edges against the data flow.
        let mut plan = QueryPlan::new();
        let src = plan.add(FeedbackSource);
        let sink = plan.add(FeedbackSink);
        plan.connect_simple(src, sink).unwrap();
        let dot = plan.dot();
        assert!(dot.contains("n1 -> n0 [style=dashed, constraint=false, label=\"¬?!\"];"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
    }

    /// A dummy that routes across its outputs, so all must be connected.
    struct Router {
        outputs: usize,
    }

    impl Operator for Router {
        fn name(&self) -> &str {
            "router"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            self.outputs
        }
        fn must_connect_all_outputs(&self) -> bool {
            true
        }
        fn on_tuple(&mut self, _i: usize, _t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
            Ok(())
        }
    }

    #[test]
    fn partitioner_with_dangling_outputs_is_rejected() {
        let mut plan = QueryPlan::new();
        let src = plan.add(Dummy::new("source", 0, 1));
        let router = plan.add(Router { outputs: 3 });
        let a = plan.add(Dummy::new("a", 1, 0));
        let b = plan.add(Dummy::new("b", 1, 0));
        plan.connect_simple(src, router).unwrap();
        plan.connect(router, 0, a, 0).unwrap();
        plan.connect(router, 1, b, 0).unwrap();
        // Output port 2 dangles: a third of the hash space would be lost.
        let err = plan.validate().unwrap_err();
        let detail = err.to_string();
        assert!(
            detail.contains("router") && detail.contains('3') && detail.contains('2'),
            "{detail}"
        );

        // Wiring the last partition makes the plan valid.
        let c = plan.add(Dummy::new("c", 1, 0));
        plan.connect(router, 2, c, 0).unwrap();
        plan.validate().unwrap();
    }

    #[test]
    fn default_plan_matches_new() {
        let default = QueryPlan::default();
        let new = QueryPlan::new();
        assert_eq!(default.page_capacity(), new.page_capacity());
        assert_eq!(default.queue_capacity(), new.queue_capacity());
        assert_eq!(default.node_count(), 0);
        assert_eq!(default.edge_count(), 0);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut plan = QueryPlan::new();
        let a = plan.add(Dummy::new("a", 1, 1));
        let b = plan.add(Dummy::new("b", 1, 1));
        plan.connect_simple(a, b).unwrap();
        plan.connect_simple(b, a).unwrap();
        assert!(plan.validate().is_err());
    }

    #[test]
    fn worker_pool_and_pins_are_configurable() {
        assert_eq!(QueryPlan::new().worker_pool(), None);
        assert_eq!(QueryPlan::new().with_worker_pool(0).worker_pool(), Some(1), "clamped");
        let mut plan = QueryPlan::new().with_worker_pool(4);
        assert_eq!(plan.worker_pool(), Some(4));
        let a = plan.add(Dummy::new("a", 0, 1));
        assert_eq!(plan.worker_pin(a), None);
        plan.pin_to_worker(a, 3).unwrap();
        assert_eq!(plan.worker_pin(a), Some(3));
        assert!(plan.pin_to_worker(NodeId(9), 0).is_err(), "unknown node");
    }

    #[test]
    fn capacities_are_configurable() {
        let plan = QueryPlan::new().with_page_capacity(16).with_queue_capacity(8);
        assert_eq!(plan.page_capacity(), 16);
        assert_eq!(plan.queue_capacity(), 8);
        let clamped = QueryPlan::new().with_page_capacity(0).with_queue_capacity(0);
        assert_eq!(clamped.page_capacity(), 1);
        assert_eq!(clamped.queue_capacity(), 1);
    }
}
