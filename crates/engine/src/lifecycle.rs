//! The executor-agnostic operator lifecycle.
//!
//! All three executors (sync, threaded, pooled) drive every operator through
//! the same **active → flush → drain → release** protocol, and the loss-free
//! feedback guarantee hangs on its details — so the protocol is implemented
//! exactly once, here, as a per-operator state machine ([`NodeMachine`]) over
//! an abstract endpoint surface ([`LifecyclePorts`]):
//!
//! * **Active** — drain pending control (with priority), then do one unit of
//!   data work: a source poll, or one sweep over the open inputs consuming at
//!   most one page each.  A bounded `budget` of data units per
//!   [`NodeMachine::step`] call lets the callers shape scheduling: the sync
//!   executor steps with budget 1 (deterministic round-robin), the threaded
//!   executor with an unlimited budget (the thread owns the operator), the
//!   pooled executor with a medium budget (cooperative time-slicing across a
//!   worker pool).
//! * **flush** — when every input has closed (or the source is exhausted, or
//!   shutdown arrived): `on_flush`, remaining partial pages, then data
//!   end-of-stream to every consumer.  Flushing is a transition, not a
//!   phase — it never suspends, and its sends ignore back-pressure credit.
//! * **Draining** — keep servicing downstream control (feedback sent from a
//!   consumer's own flush!) until every consumer has sent its control
//!   end-of-stream handshake or hung up.
//! * **Released** — send the control end-of-stream handshake upstream,
//!   releasing the producers from *their* drain phases in turn, and finish.
//!
//! [`NodeMachine::step`] reports one of three outcomes: `Yield` (made
//! progress or ran out of budget; step again when convenient), `Idle` (no
//! progress possible until an external event: data, credit, or control), and
//! `Done` (released).  What "wait for an external event" means is the
//! executor's business — the threaded executor parks the thread, the pooled
//! executor parks the *task* and relies on queue notifications, the sync
//! executor uses `Idle` for stall detection.
//!
//! # Supervised recovery
//!
//! Because the lifecycle is implemented once, fault tolerance is too.  Every
//! operator callback is dispatched through [`guarded`], which catches both
//! `Err` returns and panics and names them after the operator — so all three
//! executors report the identical `OperatorFailed` text.  An operator whose
//! plan declares [`RecoveryPolicy::Restart`] additionally runs under a
//! [`RecoveryState`]: checkpoints of [`crate::Operator::checkpoint`] are
//! taken at punctuation-epoch boundaries, input pages since the last
//! checkpoint are retained, and a failure triggers restore-and-replay *in
//! place* — the machine stays `Active`, its neighbours never notice.
//! Emissions regenerated during replay that were already delivered before the
//! crash are suppressed by per-slot counters, so downstream sees each page
//! exactly once.  A failure past the restart budget either aborts the run
//! (default) or — under quarantine, used by the multi-query manager —
//! tombstones the operator: its branch is drained (EOS downstream, Shutdown
//! upstream) while the rest of the plan keeps running.  See
//! `docs/RECOVERY.md` for the full protocol.

use crate::control::ControlMessage;
use crate::error::{EngineError, EngineResult};
use crate::executor::panic_detail;
use crate::metrics::OperatorMetrics;
use crate::operator::{Emission, Operator, OperatorContext, SourceState, StateEntry, StreamItem};
use crate::page::Page;
use crate::plan::RecoveryPolicy;
use crate::queue::{ControlPoll, DataPoll, QueueMessage};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Retention-buffer backstop: a checkpoint is forced once this many pages
/// accumulate since the last one, bounding replay memory even when the
/// punctuation interval is large (or the stream carries no punctuation).
const MAX_RETAINED_PAGES: usize = 512;

/// Runs one operator callback under supervision: catches panics as well as
/// `Err` returns, accounts the time as busy, and names the failure after the
/// operator so every executor reports identical error text.
fn guarded<T>(
    metrics: &mut OperatorMetrics,
    body: impl FnOnce() -> EngineResult<T>,
) -> EngineResult<T> {
    let timer = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(body));
    metrics.busy += timer.elapsed();
    match outcome {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(err)) => Err(name_failure(&metrics.operator, err)),
        Err(payload) => Err(EngineError::OperatorFailed {
            operator: metrics.operator.clone(),
            detail: format!("operator panicked: {}", panic_detail(payload.as_ref())),
        }),
    }
}

/// Attributes an error to the operator unless it already carries a name
/// (nested failures keep the innermost attribution).
fn name_failure(operator: &str, err: EngineError) -> EngineError {
    match err {
        named @ EngineError::OperatorFailed { .. } => named,
        other => EngineError::OperatorFailed {
            operator: operator.to_string(),
            detail: other.to_string(),
        },
    }
}

/// The endpoint surface a [`NodeMachine`] drives an operator through.
///
/// Implementations view a node's *connected* connections as dense slot
/// arrays: input slots `0..in_count()` and output slots `0..out_count()`,
/// each mapped to the operator-declared port it serves.  The three executors
/// provide adapters over their native endpoints (sync: shared edge state;
/// threaded: blocking channel endpoints; pooled: notification-driven
/// queues).
pub(crate) trait LifecyclePorts {
    /// Number of connected input slots.
    fn in_count(&self) -> usize;
    /// The declared input port an input slot serves.
    fn in_port(&self, slot: usize) -> usize;
    /// Whether the input slot still expects data (no end-of-stream seen).
    fn in_open(&self, slot: usize) -> bool;
    /// Marks an input slot as closed (end-of-stream or producer gone).
    fn close_in(&mut self, slot: usize);
    /// Non-blocking receive of one data message on an input slot.
    fn poll_in(&mut self, slot: usize) -> DataPoll;
    /// Pages currently waiting on an input slot's queue, sampled without
    /// consuming.  Feeds the `max_queue_depth` metric and the per-callback
    /// [`OperatorContext::queue_depth`] backlog signal on every executor.
    fn in_depth(&self, slot: usize) -> usize {
        let _ = slot;
        0
    }
    /// Maps a declared input port to its slot, if connected.
    fn in_slot(&self, port: usize) -> Option<usize>;
    /// Sends a control message upstream on an input slot.  Returns `false`
    /// when the producer is gone (the message is undeliverable).
    fn send_control(&mut self, slot: usize, message: ControlMessage) -> bool;

    /// Number of connected output slots.
    fn out_count(&self) -> usize;
    /// The declared output port an output slot serves.
    fn out_port(&self, slot: usize) -> usize;
    /// Maps a declared output port to its slot, if connected.
    fn out_slot(&self, port: usize) -> Option<usize>;
    /// Whether the output slot's consumer is still reading data.
    fn out_data_open(&self, slot: usize) -> bool;
    /// Pushes one stream item through the slot's page builder, delivering
    /// any page it completes.
    fn push_item(&mut self, slot: usize, item: StreamItem, metrics: &mut OperatorMetrics);
    /// Delivers a whole page intact (flushing the slot's partial builder
    /// first so emission order is preserved).
    fn push_page(&mut self, slot: usize, page: Page, metrics: &mut OperatorMetrics);
    /// Flushes the slot's partial page builder, delivering the remnant.
    fn flush_out(&mut self, slot: usize, metrics: &mut OperatorMetrics);
    /// Signals data end-of-stream on the slot.
    fn send_eos(&mut self, slot: usize);
    /// Whether the slot's consumer may still send control messages (its
    /// control end-of-stream handshake has not arrived, and it is alive).
    fn control_open(&self, slot: usize) -> bool;
    /// Marks the slot's control channel as closed.
    fn close_control(&mut self, slot: usize);
    /// Non-blocking receive of one control message on an output slot.
    fn poll_control(&mut self, slot: usize) -> ControlPoll;

    /// Back-pressure credit: whether the slot can absorb more data without
    /// exceeding its bound.  Blocking executors keep the default (`true`) —
    /// their sends block instead; the pooled executor gates data steps on it.
    fn has_credit(&self, slot: usize) -> bool {
        let _ = slot;
        true
    }
}

/// Lifecycle phase (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Active,
    Draining,
    Released,
}

/// What a [`NodeMachine::step`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Nothing to do until an external event (data, credit, or control)
    /// arrives.
    Idle,
    /// Progress was made (or the budget ran out) and more work may remain;
    /// step again when convenient.
    Yield,
    /// The operator has released; it will never need stepping again.
    Done,
}

/// How a data-path failure was resolved (both variants mean the run itself
/// continues; an exhausted budget without quarantine propagates `Err`
/// instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailureOutcome {
    /// The operator restored its last checkpoint and will replay the
    /// retained suffix.
    Restored,
    /// The operator was tombstoned: its branch drains, the run continues.
    Tombstoned,
}

/// Supervision state for one operator under a `Restart` recovery policy.
pub(crate) struct RecoveryState {
    max_restarts: u32,
    backoff: Duration,
    checkpoint_interval: u64,
    /// Restarts performed so far.
    attempts: u32,
    /// The last checkpoint (empty before the first one = initial state).
    snapshot: Vec<StateEntry>,
    /// Input pages consumed since the last checkpoint, in arrival order,
    /// keyed by input slot — the replay suffix.
    retained: Vec<(usize, Page)>,
    /// `Some(next index into retained)` while a replay is in progress.
    replay_cursor: Option<usize>,
    /// Whether the initial checkpoint (taken before any work) exists yet.
    /// Priming guarantees `restore` always receives a real snapshot — an
    /// operator that cannot reconstruct its initial state (a source whose
    /// input iterator is consumed) would otherwise be unrecoverable before
    /// its first epoch boundary.
    primed: bool,
    /// Punctuations consumed (sources: emitted) since the last checkpoint —
    /// the epoch trigger.
    puncts_since_checkpoint: u64,
    /// Per-output-slot count of data deliveries since the last checkpoint.
    pushed_out: Vec<u64>,
    /// Per-output-slot suppression credit: deliveries regenerated by replay
    /// that downstream already received and must not see again.
    skip_out: Vec<u64>,
    /// Per-input-slot count of upstream control sends since the last
    /// checkpoint (feedback and result requests share one ordered sequence).
    pushed_ctl: Vec<u64>,
    /// Per-input-slot suppression credit for regenerated control sends.
    skip_ctl: Vec<u64>,
    /// Fast-path summary of the credit vectors: true while any `skip_out` /
    /// `skip_ctl` credit is outstanding.  Steady state (no restart in
    /// progress) answers every per-emission suppression probe with this one
    /// branch instead of a vector lookup.
    skipping: bool,
}

impl std::fmt::Debug for RecoveryState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryState")
            .field("max_restarts", &self.max_restarts)
            .field("backoff", &self.backoff)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("attempts", &self.attempts)
            .field("snapshot_entries", &self.snapshot.len())
            .field("retained_pages", &self.retained.len())
            .field("replay_cursor", &self.replay_cursor)
            .field("puncts_since_checkpoint", &self.puncts_since_checkpoint)
            .finish_non_exhaustive()
    }
}

impl RecoveryState {
    fn new(max_restarts: u32, backoff: Duration, checkpoint_interval: u64) -> Self {
        RecoveryState {
            max_restarts,
            backoff,
            checkpoint_interval,
            attempts: 0,
            snapshot: Vec::new(),
            retained: Vec::new(),
            replay_cursor: None,
            primed: false,
            puncts_since_checkpoint: 0,
            pushed_out: Vec::new(),
            skip_out: Vec::new(),
            pushed_ctl: Vec::new(),
            skip_ctl: Vec::new(),
            skipping: false,
        }
    }

    fn replaying(&self) -> bool {
        self.replay_cursor.is_some()
    }

    /// Consumes one unit of output-slot suppression credit, if any.
    #[inline]
    fn suppress_out(&mut self, slot: usize) -> bool {
        if !self.skipping {
            return false;
        }
        match self.skip_out.get_mut(slot) {
            Some(credit) if *credit > 0 => {
                *credit -= 1;
                if *credit == 0 {
                    self.refresh_skipping();
                }
                true
            }
            _ => false,
        }
    }

    /// Records one delivered data push on an output slot.
    #[inline]
    fn record_out(&mut self, slot: usize) {
        if self.pushed_out.len() <= slot {
            self.pushed_out.resize(slot + 1, 0);
        }
        self.pushed_out[slot] += 1;
    }

    /// Consumes one unit of control-send suppression credit, if any.
    fn suppress_ctl(&mut self, slot: usize) -> bool {
        if !self.skipping {
            return false;
        }
        match self.skip_ctl.get_mut(slot) {
            Some(credit) if *credit > 0 => {
                *credit -= 1;
                if *credit == 0 {
                    self.refresh_skipping();
                }
                true
            }
            _ => false,
        }
    }

    /// Records one delivered upstream control send on an input slot.
    fn record_ctl(&mut self, slot: usize) {
        if self.pushed_ctl.len() <= slot {
            self.pushed_ctl.resize(slot + 1, 0);
        }
        self.pushed_ctl[slot] += 1;
    }

    /// Recomputes the `skipping` summary after the credit vectors change.
    fn refresh_skipping(&mut self) {
        self.skipping =
            self.skip_out.iter().any(|c| *c > 0) || self.skip_ctl.iter().any(|c| *c > 0);
    }
}

/// Per-operator lifecycle state machine, shared by all three executors.
#[derive(Debug)]
pub(crate) struct NodeMachine {
    phase: Phase,
    is_source: bool,
    shutdown: bool,
    /// Whether a failure past the restart budget tombstones this operator
    /// (draining its branch) instead of aborting the run.
    quarantine: bool,
    recovery: Option<RecoveryState>,
}

impl NodeMachine {
    /// Creates the machine with a recovery policy: `Restart` arms
    /// checkpoint-and-replay supervision, `quarantine` turns budget
    /// exhaustion into a branch tombstone instead of a run abort.
    pub(crate) fn supervised(
        is_source: bool,
        policy: RecoveryPolicy,
        quarantine: bool,
        checkpoint_interval: u64,
    ) -> Self {
        let recovery = match policy {
            RecoveryPolicy::FailFast => None,
            RecoveryPolicy::Restart { max_restarts, backoff } => {
                Some(RecoveryState::new(max_restarts, backoff, checkpoint_interval))
            }
        };
        NodeMachine { phase: Phase::Active, is_source, shutdown: false, quarantine, recovery }
    }

    /// True once the operator has released.
    pub(crate) fn is_done(&self) -> bool {
        self.phase == Phase::Released
    }

    /// True while the machine still consumes data — the caller's idle wait
    /// should include the input queues.  During the drain phase only the
    /// downstream control channels matter.
    pub(crate) fn waiting_on_inputs(&self) -> bool {
        self.phase == Phase::Active
    }

    /// Advances the operator: control first (with priority), then up to
    /// `budget` units of data work (a source poll, one sweep over the open
    /// inputs, or one replayed page during recovery).  Returns how the call
    /// ended; errors arrive already named after the operator.
    pub(crate) fn step<P: LifecyclePorts>(
        &mut self,
        op: &mut dyn Operator,
        ports: &mut P,
        metrics: &mut OperatorMetrics,
        ctx: &mut OperatorContext,
        budget: usize,
    ) -> EngineResult<StepOutcome> {
        let mut spent = 0usize;
        let mut acted = false;
        loop {
            match self.phase {
                Phase::Active => {
                    if let Some(rec) = self.recovery.as_mut() {
                        if !rec.primed {
                            rec.primed = true;
                            rec.snapshot = guarded(metrics, || op.checkpoint())?;
                        }
                    }
                    if process_control(op, ports, metrics, ctx, false, &mut self.shutdown)? {
                        acted = true;
                    }
                    if self.shutdown {
                        // Downstream is tearing the query down: relay
                        // source-ward, then wind down through the normal
                        // flush → drain → release path.
                        for slot in 0..ports.in_count() {
                            ports.send_control(slot, ControlMessage::Shutdown);
                        }
                        self.flush(op, ports, metrics, ctx)?;
                        acted = true;
                        continue;
                    }
                    if spent >= budget {
                        return Ok(StepOutcome::Yield);
                    }
                    // Cooperative back-pressure (pooled executor): produce
                    // nothing while any live output lacks credit.
                    let credit = (0..ports.out_count())
                        .all(|s| !ports.out_data_open(s) || ports.has_credit(s));
                    if !credit {
                        return Ok(if acted { StepOutcome::Yield } else { StepOutcome::Idle });
                    }

                    // Recovery replay has priority over fresh input: the
                    // operator must re-reach its pre-failure position before
                    // consuming anything new, or ordering breaks.
                    if self.recovery.as_ref().is_some_and(RecoveryState::replaying)
                        && self.replay_one(op, ports, metrics, ctx)?
                    {
                        spent += 1;
                        acted = true;
                        continue;
                    }
                    // Falls through here once the replay suffix is exhausted,
                    // resuming normal work.

                    if self.is_source {
                        let before_puncts = metrics.punctuations_out;
                        let state = match guarded(metrics, || op.poll_source(ctx)) {
                            Ok(state) => state,
                            Err(err) => {
                                self.handle_data_failure(err, op, ports, metrics, ctx)?;
                                spent += 1;
                                acted = true;
                                continue;
                            }
                        };
                        route_node(ctx, ports, metrics, false, self.recovery.as_mut());
                        if let Some(rec) = self.recovery.as_mut() {
                            // Sources have no input punctuation; their epoch
                            // trigger is the punctuation they emit.
                            rec.puncts_since_checkpoint += metrics.punctuations_out - before_puncts;
                        }
                        self.maybe_checkpoint(op, metrics)?;
                        spent += 1;
                        acted = true;
                        if ports.out_count() > 0
                            && (0..ports.out_count()).all(|s| !ports.out_data_open(s))
                        {
                            // Every consumer hung up; nothing downstream
                            // will read further output.
                            self.flush(op, ports, metrics, ctx)?;
                            continue;
                        }
                        match state {
                            SourceState::Producing => continue,
                            SourceState::Exhausted | SourceState::NotASource => {
                                self.flush(op, ports, metrics, ctx)?;
                                continue;
                            }
                        }
                    }

                    // Non-source: sweep the open inputs, consuming at most
                    // one page each.
                    let mut progressed = false;
                    let mut interrupted = false;
                    for slot in 0..ports.in_count() {
                        if !ports.in_open(slot) {
                            continue;
                        }
                        // Sample the backlog before consuming from it: the
                        // high-watermark metric and the operator-visible
                        // back-pressure signal, on every executor.
                        let depth = ports.in_depth(slot) as u64;
                        metrics.max_queue_depth = metrics.max_queue_depth.max(depth);
                        ctx.set_queue_depth(depth);
                        match ports.poll_in(slot) {
                            DataPoll::Message(QueueMessage::Page(mut page)) => {
                                progressed = true;
                                metrics.pages_in += 1;
                                metrics.tuples_in += page.tuple_count() as u64;
                                let punctuations = page.punctuation_count() as u64;
                                metrics.punctuations_in += punctuations;
                                let port = ports.in_port(slot);
                                if let Some(rec) = self.recovery.as_mut() {
                                    // Retain before dispatch: a crash inside
                                    // the callback must still replay this
                                    // page.  `share` keeps retention O(1)
                                    // per page — the retained copy and the
                                    // dispatched page reference one row
                                    // allocation.
                                    rec.retained.push((slot, page.share()));
                                }
                                match guarded(metrics, || op.on_page(port, page, ctx)) {
                                    Ok(()) => {
                                        route_node(
                                            ctx,
                                            ports,
                                            metrics,
                                            false,
                                            self.recovery.as_mut(),
                                        );
                                        if let Some(rec) = self.recovery.as_mut() {
                                            rec.puncts_since_checkpoint += punctuations;
                                        }
                                        self.maybe_checkpoint(op, metrics)?;
                                    }
                                    Err(err) => {
                                        self.handle_data_failure(err, op, ports, metrics, ctx)?;
                                        // Whether restored (replay pending)
                                        // or tombstoned (now draining), the
                                        // sweep must not continue.
                                        interrupted = true;
                                        break;
                                    }
                                }
                            }
                            DataPoll::Message(QueueMessage::EndOfStream) | DataPoll::Closed => {
                                progressed = true;
                                ports.close_in(slot);
                            }
                            DataPoll::Empty => {}
                        }
                    }
                    if interrupted {
                        spent += 1;
                        acted = true;
                        continue;
                    }
                    if (0..ports.in_count()).all(|s| !ports.in_open(s)) {
                        self.flush(op, ports, metrics, ctx)?;
                        acted = true;
                        continue;
                    }
                    if !progressed {
                        return Ok(if acted { StepOutcome::Yield } else { StepOutcome::Idle });
                    }
                    acted = true;
                    spent += 1;
                }
                Phase::Draining => {
                    if process_control(op, ports, metrics, ctx, true, &mut self.shutdown)? {
                        acted = true;
                        continue;
                    }
                    if (0..ports.out_count()).all(|s| !ports.control_open(s)) {
                        // Release: promise the upstream producers that no
                        // further control will arrive on these connections,
                        // ending their drain phases in turn.
                        for slot in 0..ports.in_count() {
                            ports.send_control(slot, ControlMessage::EndOfStream);
                        }
                        self.phase = Phase::Released;
                        return Ok(StepOutcome::Done);
                    }
                    return Ok(if acted { StepOutcome::Yield } else { StepOutcome::Idle });
                }
                Phase::Released => return Ok(StepOutcome::Done),
            }
        }
    }

    /// Re-dispatches one retained page during recovery replay.  Returns
    /// `false` when the replay suffix is exhausted (the cursor is cleared and
    /// normal consumption may resume).
    fn replay_one<P: LifecyclePorts>(
        &mut self,
        op: &mut dyn Operator,
        ports: &mut P,
        metrics: &mut OperatorMetrics,
        ctx: &mut OperatorContext,
    ) -> EngineResult<bool> {
        let rec = self.recovery.as_mut().expect("replay requires a recovery state");
        let cursor = rec.replay_cursor.expect("replay_one requires an active cursor");
        if cursor >= rec.retained.len() {
            rec.replay_cursor = None;
            return Ok(false);
        }
        let (slot, page) = {
            let (slot, page) = &rec.retained[cursor];
            (*slot, page.clone())
        };
        rec.replay_cursor = Some(cursor + 1);
        // Replayed pages count as replay work, not fresh input — the
        // pages_in / tuples_in counters already saw them.
        metrics.tuples_replayed += page.tuple_count() as u64;
        let port = ports.in_port(slot);
        match guarded(metrics, || op.on_page(port, page, ctx)) {
            Ok(()) => {
                route_node(ctx, ports, metrics, false, self.recovery.as_mut());
                Ok(true)
            }
            Err(err) => {
                // Crashing again mid-replay burns another restart (or the
                // budget): restore rewinds the cursor to 0.
                self.handle_data_failure(err, op, ports, metrics, ctx)?;
                Ok(true)
            }
        }
    }

    /// Resolves a data-path failure: restart in place when the budget allows,
    /// tombstone under quarantine, abort otherwise.
    fn handle_data_failure<P: LifecyclePorts>(
        &mut self,
        err: EngineError,
        op: &mut dyn Operator,
        ports: &mut P,
        metrics: &mut OperatorMetrics,
        ctx: &mut OperatorContext,
    ) -> EngineResult<FailureOutcome> {
        // Whatever the failed callback half-emitted must never reach
        // downstream: the replay will regenerate it deterministically.
        ctx.clear();
        let can_restart = self.recovery.as_ref().is_some_and(|r| r.attempts < r.max_restarts);
        if !can_restart {
            if self.quarantine {
                self.tombstone(err, ports, metrics, ctx);
                return Ok(FailureOutcome::Tombstoned);
            }
            return Err(err);
        }
        let rec = self.recovery.as_mut().expect("can_restart implies a recovery state");
        rec.attempts += 1;
        metrics.restarts += 1;
        if !rec.backoff.is_zero() {
            std::thread::sleep(rec.backoff * rec.attempts);
        }
        // `StateEntry` payloads are not clonable, so restoring consumes the
        // snapshot; a fresh checkpoint of the just-restored operator refills
        // it for the *next* failure.
        let snapshot = std::mem::take(&mut rec.snapshot);
        let restored = guarded(metrics, || op.restore(snapshot))
            .and_then(|()| guarded(metrics, || op.checkpoint()));
        match restored {
            Ok(refreshed) => {
                let rec = self.recovery.as_mut().expect("recovery state persists");
                rec.snapshot = refreshed;
                // Everything delivered since the checkpoint will be
                // regenerated by the replay and must be suppressed.  The
                // pushed counters keep accumulating across nested restarts
                // (they reset only at a checkpoint).
                rec.skip_out = rec.pushed_out.clone();
                rec.skip_ctl = rec.pushed_ctl.clone();
                rec.refresh_skipping();
                rec.replay_cursor = Some(0);
                Ok(FailureOutcome::Restored)
            }
            Err(restore_err) => {
                // A broken restore path is unrecoverable regardless of the
                // remaining budget.
                if self.quarantine {
                    self.tombstone(restore_err, ports, metrics, ctx);
                    Ok(FailureOutcome::Tombstoned)
                } else {
                    Err(restore_err)
                }
            }
        }
    }

    /// Tombstones a failed operator: records the terminal failure, drains
    /// its branch (EOS downstream, Shutdown upstream) and enters the drain
    /// phase, letting the rest of the plan finish normally.  The operator's
    /// callbacks are never invoked again (no `on_flush` — it is broken).
    fn tombstone<P: LifecyclePorts>(
        &mut self,
        err: EngineError,
        ports: &mut P,
        metrics: &mut OperatorMetrics,
        ctx: &mut OperatorContext,
    ) {
        metrics.failure = Some(err.to_string());
        ctx.clear();
        for slot in 0..ports.out_count() {
            ports.flush_out(slot, metrics);
            ports.send_eos(slot);
        }
        for slot in 0..ports.in_count() {
            ports.send_control(slot, ControlMessage::Shutdown);
            ports.close_in(slot);
        }
        self.phase = Phase::Draining;
    }

    /// Takes a checkpoint when the punctuation epoch (or the retention
    /// backstop) says one is due.  Never fires mid-replay — the snapshot
    /// must correspond to a fully caught-up operator.
    fn maybe_checkpoint(
        &mut self,
        op: &mut dyn Operator,
        metrics: &mut OperatorMetrics,
    ) -> EngineResult<()> {
        let Some(rec) = self.recovery.as_mut() else { return Ok(()) };
        if rec.replay_cursor.is_some() {
            return Ok(());
        }
        let due = (rec.checkpoint_interval > 0
            && rec.puncts_since_checkpoint >= rec.checkpoint_interval)
            || rec.retained.len() >= MAX_RETAINED_PAGES;
        if !due {
            return Ok(());
        }
        rec.snapshot = guarded(metrics, || op.checkpoint())?;
        rec.retained.clear();
        rec.puncts_since_checkpoint = 0;
        rec.pushed_out.iter_mut().for_each(|c| *c = 0);
        rec.skip_out.iter_mut().for_each(|c| *c = 0);
        rec.pushed_ctl.iter_mut().for_each(|c| *c = 0);
        rec.skip_ctl.iter_mut().for_each(|c| *c = 0);
        rec.skipping = false;
        metrics.checkpoints_taken += 1;
        Ok(())
    }

    /// The flush transition: `on_flush`, remaining partial pages, data
    /// end-of-stream everywhere, then enter the drain phase.  Never
    /// suspends; its sends ignore credit.
    fn flush<P: LifecyclePorts>(
        &mut self,
        op: &mut dyn Operator,
        ports: &mut P,
        metrics: &mut OperatorMetrics,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        guarded(metrics, || op.on_flush(ctx))?;
        route_node(ctx, ports, metrics, false, self.recovery.as_mut());
        for slot in 0..ports.out_count() {
            ports.flush_out(slot, metrics);
            ports.send_eos(slot);
        }
        self.phase = Phase::Draining;
        Ok(())
    }
}

/// Drains every pending control message from downstream, dispatching
/// feedback and result requests to the operator with priority.  Returns
/// whether anything was processed.
///
/// Control-path emissions route without recovery suppression: they are not
/// part of the retained-page replay, so feedback-receiving operators cannot
/// be restarted (see [`crate::Operator::restartable`]).  A `Shutdown` is
/// offered to [`crate::Operator::absorb_shutdown`] first — a shared fan-out
/// absorbs it per-port (detaching one quarantined consumer) instead of
/// tearing the whole operator down.
pub(crate) fn process_control<P: LifecyclePorts>(
    op: &mut dyn Operator,
    ports: &mut P,
    metrics: &mut OperatorMetrics,
    ctx: &mut OperatorContext,
    after_eos: bool,
    shutdown: &mut bool,
) -> EngineResult<bool> {
    let mut progressed = false;
    for slot in 0..ports.out_count() {
        while ports.control_open(slot) {
            match ports.poll_control(slot) {
                ControlPoll::Message(ControlMessage::Feedback(fb)) => {
                    progressed = true;
                    metrics.feedback_in += 1;
                    let port = ports.out_port(slot);
                    guarded(metrics, || op.on_feedback(port, fb, ctx))?;
                    route_node(ctx, ports, metrics, after_eos, None);
                }
                ControlPoll::Message(ControlMessage::RequestResults) => {
                    progressed = true;
                    let port = ports.out_port(slot);
                    guarded(metrics, || op.on_request_results(port, ctx))?;
                    route_node(ctx, ports, metrics, after_eos, None);
                }
                ControlPoll::Message(ControlMessage::Shutdown) => {
                    progressed = true;
                    let port = ports.out_port(slot);
                    let absorbed = guarded(metrics, || Ok(op.absorb_shutdown(port, ctx)))?;
                    // Absorbing may release pending feedback to relay (a
                    // fan-out detach re-evaluates its unanimity lattice) —
                    // route it even when the shutdown still propagates.
                    route_node(ctx, ports, metrics, after_eos, None);
                    if !absorbed {
                        *shutdown = true;
                    }
                }
                ControlPoll::Message(ControlMessage::EndOfStream) | ControlPoll::Closed => {
                    progressed = true;
                    ports.close_control(slot);
                }
                ControlPoll::Empty => break,
            }
        }
    }
    Ok(progressed)
}

/// Routes one operator's buffered emissions and feedback through its ports.
/// `after_eos` marks routing performed during the drain phase: data
/// end-of-stream has already been sent, so late data emissions (from
/// post-flush feedback callbacks) are counted but cannot be delivered.
/// Undeliverable feedback — unconnected port, or upstream gone — is counted
/// in `feedback_dropped`, never silently lost.
///
/// With a `recovery` state attached, deliveries the replay regenerates are
/// suppressed against the per-slot skip credits (without re-counting them in
/// the metrics), and fresh deliveries are recorded so a later restart knows
/// what downstream has already seen.
pub(crate) fn route_node<P: LifecyclePorts>(
    ctx: &mut OperatorContext,
    ports: &mut P,
    metrics: &mut OperatorMetrics,
    after_eos: bool,
    mut recovery: Option<&mut RecoveryState>,
) {
    let replaying = recovery.as_deref().is_some_and(RecoveryState::replaying);
    // The emission drain is the per-tuple hot path (operators like SELECT
    // emit item-by-item), so it is specialized on the recovery state once
    // per call rather than re-testing the `Option` on every emission: the
    // fail-fast arm is the pre-supervision path unchanged, and the
    // supervised arm borrows the state directly.
    match recovery.as_deref_mut() {
        None => ctx.drain_emissions(|port, emission| {
            let deliverable =
                ports.out_slot(port).filter(|&s| !after_eos && ports.out_data_open(s));
            match emission {
                Emission::Item(item) => {
                    match &item {
                        StreamItem::Tuple(_) => metrics.tuples_out += 1,
                        StreamItem::Punctuation(_) => metrics.punctuations_out += 1,
                    }
                    if let Some(slot) = deliverable {
                        ports.push_item(slot, item, metrics);
                    }
                    // Undeliverable (unconnected sink side-channel, hung-up
                    // consumer, post-EOS emission): counted and dropped.
                }
                Emission::Page(page) => {
                    metrics.tuples_out += page.tuple_count() as u64;
                    metrics.punctuations_out += page.punctuation_count() as u64;
                    if let Some(slot) = deliverable {
                        ports.push_page(slot, page, metrics);
                    }
                }
            }
        }),
        Some(rec) => ctx.drain_emissions(|port, emission| {
            let deliverable =
                ports.out_slot(port).filter(|&s| !after_eos && ports.out_data_open(s));
            match emission {
                Emission::Item(item) => {
                    if let Some(slot) = deliverable {
                        if rec.suppress_out(slot) {
                            return;
                        }
                        match &item {
                            StreamItem::Tuple(_) => metrics.tuples_out += 1,
                            StreamItem::Punctuation(_) => metrics.punctuations_out += 1,
                        }
                        ports.push_item(slot, item, metrics);
                        rec.record_out(slot);
                    } else if !replaying {
                        // Count and drop — but only once, not again when a
                        // replay regenerates the emission.
                        match &item {
                            StreamItem::Tuple(_) => metrics.tuples_out += 1,
                            StreamItem::Punctuation(_) => metrics.punctuations_out += 1,
                        }
                    }
                }
                Emission::Page(page) => {
                    if let Some(slot) = deliverable {
                        if rec.suppress_out(slot) {
                            return;
                        }
                        metrics.tuples_out += page.tuple_count() as u64;
                        metrics.punctuations_out += page.punctuation_count() as u64;
                        ports.push_page(slot, page, metrics);
                        rec.record_out(slot);
                    } else if !replaying {
                        metrics.tuples_out += page.tuple_count() as u64;
                        metrics.punctuations_out += page.punctuation_count() as u64;
                    }
                }
            }
        }),
    }
    for (input, fb) in ctx.take_feedback() {
        match ports.in_slot(input) {
            Some(slot) => {
                if recovery.as_deref_mut().is_some_and(|r| r.suppress_ctl(slot)) {
                    continue;
                }
                if ports.send_control(slot, ControlMessage::Feedback(fb)) {
                    metrics.feedback_out += 1;
                    if let Some(rec) = recovery.as_deref_mut() {
                        rec.record_ctl(slot);
                    }
                } else {
                    metrics.feedback_dropped += 1;
                }
            }
            None => {
                if !replaying {
                    metrics.feedback_dropped += 1;
                }
            }
        }
    }
    for input in ctx.take_result_requests() {
        if let Some(slot) = ports.in_slot(input) {
            if recovery.as_deref_mut().is_some_and(|r| r.suppress_ctl(slot)) {
                continue;
            }
            if ports.send_control(slot, ControlMessage::RequestResults) {
                if let Some(rec) = recovery.as_deref_mut() {
                    rec.record_ctl(slot);
                }
            }
        }
    }
    // Broadcasts: control punctuation to every connected output (a
    // partitioner keeping its replicas punctuated) and feedback to every
    // connected input (a merge point fanning feedback out to its replicas).
    // The final target receives the original by move — N targets cost N-1
    // clones, and the single-target broadcast costs none.
    for punctuation in ctx.take_broadcast_punctuations() {
        let targets: Vec<usize> = if after_eos {
            Vec::new()
        } else {
            (0..ports.out_count()).filter(|&s| ports.out_data_open(s)).collect()
        };
        if targets.is_empty() {
            if !replaying {
                metrics.punctuations_out += 1; // count-and-drop, as for port emissions
            }
            continue;
        }
        let mut remaining = Some(punctuation);
        let last = targets.len() - 1;
        for (k, slot) in targets.into_iter().enumerate() {
            let copy = if k == last {
                remaining.take().expect("one move per broadcast")
            } else {
                remaining.as_ref().expect("clones precede the move").clone()
            };
            if recovery.as_deref_mut().is_some_and(|r| r.suppress_out(slot)) {
                continue;
            }
            metrics.punctuations_out += 1;
            ports.push_item(slot, StreamItem::Punctuation(copy), metrics);
            if let Some(rec) = recovery.as_deref_mut() {
                rec.record_out(slot);
            }
        }
    }
    for fb in ctx.take_broadcast_feedback() {
        if ports.in_count() == 0 {
            if !replaying {
                metrics.feedback_dropped += 1;
            }
            continue;
        }
        let mut remaining = Some(fb);
        let last = ports.in_count() - 1;
        for slot in 0..ports.in_count() {
            let copy = if slot == last {
                remaining.take().expect("one move per broadcast")
            } else {
                remaining.as_ref().expect("clones precede the move").clone()
            };
            if recovery.as_deref_mut().is_some_and(|r| r.suppress_ctl(slot)) {
                continue;
            }
            if ports.send_control(slot, ControlMessage::Feedback(copy)) {
                metrics.feedback_out += 1;
                if let Some(rec) = recovery.as_deref_mut() {
                    rec.record_ctl(slot);
                }
            } else {
                metrics.feedback_dropped += 1;
            }
        }
    }
}
