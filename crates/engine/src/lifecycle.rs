//! The executor-agnostic operator lifecycle.
//!
//! All three executors (sync, threaded, pooled) drive every operator through
//! the same **active → flush → drain → release** protocol, and the loss-free
//! feedback guarantee hangs on its details — so the protocol is implemented
//! exactly once, here, as a per-operator state machine ([`NodeMachine`]) over
//! an abstract endpoint surface ([`LifecyclePorts`]):
//!
//! * **Active** — drain pending control (with priority), then do one unit of
//!   data work: a source poll, or one sweep over the open inputs consuming at
//!   most one page each.  A bounded `budget` of data units per
//!   [`NodeMachine::step`] call lets the callers shape scheduling: the sync
//!   executor steps with budget 1 (deterministic round-robin), the threaded
//!   executor with an unlimited budget (the thread owns the operator), the
//!   pooled executor with a medium budget (cooperative time-slicing across a
//!   worker pool).
//! * **flush** — when every input has closed (or the source is exhausted, or
//!   shutdown arrived): `on_flush`, remaining partial pages, then data
//!   end-of-stream to every consumer.  Flushing is a transition, not a
//!   phase — it never suspends, and its sends ignore back-pressure credit.
//! * **Draining** — keep servicing downstream control (feedback sent from a
//!   consumer's own flush!) until every consumer has sent its control
//!   end-of-stream handshake or hung up.
//! * **Released** — send the control end-of-stream handshake upstream,
//!   releasing the producers from *their* drain phases in turn, and finish.
//!
//! [`NodeMachine::step`] reports one of three outcomes: `Yield` (made
//! progress or ran out of budget; step again when convenient), `Idle` (no
//! progress possible until an external event: data, credit, or control), and
//! `Done` (released).  What "wait for an external event" means is the
//! executor's business — the threaded executor parks the thread, the pooled
//! executor parks the *task* and relies on queue notifications, the sync
//! executor uses `Idle` for stall detection.

use crate::control::ControlMessage;
use crate::error::EngineResult;
use crate::metrics::OperatorMetrics;
use crate::operator::{Emission, Operator, OperatorContext, SourceState, StreamItem};
use crate::page::Page;
use crate::queue::{ControlPoll, DataPoll, QueueMessage};
use std::time::Instant;

/// The endpoint surface a [`NodeMachine`] drives an operator through.
///
/// Implementations view a node's *connected* connections as dense slot
/// arrays: input slots `0..in_count()` and output slots `0..out_count()`,
/// each mapped to the operator-declared port it serves.  The three executors
/// provide adapters over their native endpoints (sync: shared edge state;
/// threaded: blocking channel endpoints; pooled: notification-driven
/// queues).
pub(crate) trait LifecyclePorts {
    /// Number of connected input slots.
    fn in_count(&self) -> usize;
    /// The declared input port an input slot serves.
    fn in_port(&self, slot: usize) -> usize;
    /// Whether the input slot still expects data (no end-of-stream seen).
    fn in_open(&self, slot: usize) -> bool;
    /// Marks an input slot as closed (end-of-stream or producer gone).
    fn close_in(&mut self, slot: usize);
    /// Non-blocking receive of one data message on an input slot.
    fn poll_in(&mut self, slot: usize) -> DataPoll;
    /// Pages currently waiting on an input slot's queue, sampled without
    /// consuming.  Feeds the `max_queue_depth` metric and the per-callback
    /// [`OperatorContext::queue_depth`] backlog signal on every executor.
    fn in_depth(&self, slot: usize) -> usize {
        let _ = slot;
        0
    }
    /// Maps a declared input port to its slot, if connected.
    fn in_slot(&self, port: usize) -> Option<usize>;
    /// Sends a control message upstream on an input slot.  Returns `false`
    /// when the producer is gone (the message is undeliverable).
    fn send_control(&mut self, slot: usize, message: ControlMessage) -> bool;

    /// Number of connected output slots.
    fn out_count(&self) -> usize;
    /// The declared output port an output slot serves.
    fn out_port(&self, slot: usize) -> usize;
    /// Maps a declared output port to its slot, if connected.
    fn out_slot(&self, port: usize) -> Option<usize>;
    /// Whether the output slot's consumer is still reading data.
    fn out_data_open(&self, slot: usize) -> bool;
    /// Pushes one stream item through the slot's page builder, delivering
    /// any page it completes.
    fn push_item(&mut self, slot: usize, item: StreamItem, metrics: &mut OperatorMetrics);
    /// Delivers a whole page intact (flushing the slot's partial builder
    /// first so emission order is preserved).
    fn push_page(&mut self, slot: usize, page: Page, metrics: &mut OperatorMetrics);
    /// Flushes the slot's partial page builder, delivering the remnant.
    fn flush_out(&mut self, slot: usize, metrics: &mut OperatorMetrics);
    /// Signals data end-of-stream on the slot.
    fn send_eos(&mut self, slot: usize);
    /// Whether the slot's consumer may still send control messages (its
    /// control end-of-stream handshake has not arrived, and it is alive).
    fn control_open(&self, slot: usize) -> bool;
    /// Marks the slot's control channel as closed.
    fn close_control(&mut self, slot: usize);
    /// Non-blocking receive of one control message on an output slot.
    fn poll_control(&mut self, slot: usize) -> ControlPoll;

    /// Back-pressure credit: whether the slot can absorb more data without
    /// exceeding its bound.  Blocking executors keep the default (`true`) —
    /// their sends block instead; the pooled executor gates data steps on it.
    fn has_credit(&self, slot: usize) -> bool {
        let _ = slot;
        true
    }
}

/// Lifecycle phase (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Active,
    Draining,
    Released,
}

/// What a [`NodeMachine::step`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Nothing to do until an external event (data, credit, or control)
    /// arrives.
    Idle,
    /// Progress was made (or the budget ran out) and more work may remain;
    /// step again when convenient.
    Yield,
    /// The operator has released; it will never need stepping again.
    Done,
}

/// Per-operator lifecycle state machine, shared by all three executors.
#[derive(Debug)]
pub(crate) struct NodeMachine {
    phase: Phase,
    is_source: bool,
    shutdown: bool,
}

impl NodeMachine {
    /// Creates the machine for an operator; `is_source` when it has no
    /// inputs.
    pub(crate) fn new(is_source: bool) -> Self {
        NodeMachine { phase: Phase::Active, is_source, shutdown: false }
    }

    /// True once the operator has released.
    pub(crate) fn is_done(&self) -> bool {
        self.phase == Phase::Released
    }

    /// True while the machine still consumes data — the caller's idle wait
    /// should include the input queues.  During the drain phase only the
    /// downstream control channels matter.
    pub(crate) fn waiting_on_inputs(&self) -> bool {
        self.phase == Phase::Active
    }

    /// Advances the operator: control first (with priority), then up to
    /// `budget` units of data work (a source poll, or one sweep over the open
    /// inputs).  Returns how the call ended; errors propagate unwrapped (the
    /// caller attaches the operator name).
    pub(crate) fn step<P: LifecyclePorts>(
        &mut self,
        op: &mut dyn Operator,
        ports: &mut P,
        metrics: &mut OperatorMetrics,
        ctx: &mut OperatorContext,
        budget: usize,
    ) -> EngineResult<StepOutcome> {
        let mut spent = 0usize;
        let mut acted = false;
        loop {
            match self.phase {
                Phase::Active => {
                    if process_control(op, ports, metrics, ctx, false, &mut self.shutdown)? {
                        acted = true;
                    }
                    if self.shutdown {
                        // Downstream is tearing the query down: relay
                        // source-ward, then wind down through the normal
                        // flush → drain → release path.
                        for slot in 0..ports.in_count() {
                            ports.send_control(slot, ControlMessage::Shutdown);
                        }
                        self.flush(op, ports, metrics, ctx)?;
                        acted = true;
                        continue;
                    }
                    if spent >= budget {
                        return Ok(StepOutcome::Yield);
                    }
                    // Cooperative back-pressure (pooled executor): produce
                    // nothing while any live output lacks credit.
                    let credit = (0..ports.out_count())
                        .all(|s| !ports.out_data_open(s) || ports.has_credit(s));
                    if !credit {
                        return Ok(if acted { StepOutcome::Yield } else { StepOutcome::Idle });
                    }

                    if self.is_source {
                        let timer = Instant::now();
                        let state = op.poll_source(ctx)?;
                        metrics.busy += timer.elapsed();
                        route_node(ctx, ports, metrics, false);
                        spent += 1;
                        acted = true;
                        if ports.out_count() > 0
                            && (0..ports.out_count()).all(|s| !ports.out_data_open(s))
                        {
                            // Every consumer hung up; nothing downstream
                            // will read further output.
                            self.flush(op, ports, metrics, ctx)?;
                            continue;
                        }
                        match state {
                            SourceState::Producing => continue,
                            SourceState::Exhausted | SourceState::NotASource => {
                                self.flush(op, ports, metrics, ctx)?;
                                continue;
                            }
                        }
                    }

                    // Non-source: sweep the open inputs, consuming at most
                    // one page each.
                    let mut progressed = false;
                    for slot in 0..ports.in_count() {
                        if !ports.in_open(slot) {
                            continue;
                        }
                        // Sample the backlog before consuming from it: the
                        // high-watermark metric and the operator-visible
                        // back-pressure signal, on every executor.
                        let depth = ports.in_depth(slot) as u64;
                        metrics.max_queue_depth = metrics.max_queue_depth.max(depth);
                        ctx.set_queue_depth(depth);
                        match ports.poll_in(slot) {
                            DataPoll::Message(QueueMessage::Page(page)) => {
                                progressed = true;
                                metrics.pages_in += 1;
                                metrics.tuples_in += page.tuple_count() as u64;
                                metrics.punctuations_in += page.punctuation_count() as u64;
                                let port = ports.in_port(slot);
                                let timer = Instant::now();
                                op.on_page(port, page, ctx)?;
                                metrics.busy += timer.elapsed();
                                route_node(ctx, ports, metrics, false);
                            }
                            DataPoll::Message(QueueMessage::EndOfStream) | DataPoll::Closed => {
                                progressed = true;
                                ports.close_in(slot);
                            }
                            DataPoll::Empty => {}
                        }
                    }
                    if (0..ports.in_count()).all(|s| !ports.in_open(s)) {
                        self.flush(op, ports, metrics, ctx)?;
                        acted = true;
                        continue;
                    }
                    if !progressed {
                        return Ok(if acted { StepOutcome::Yield } else { StepOutcome::Idle });
                    }
                    acted = true;
                    spent += 1;
                }
                Phase::Draining => {
                    if process_control(op, ports, metrics, ctx, true, &mut self.shutdown)? {
                        acted = true;
                        continue;
                    }
                    if (0..ports.out_count()).all(|s| !ports.control_open(s)) {
                        // Release: promise the upstream producers that no
                        // further control will arrive on these connections,
                        // ending their drain phases in turn.
                        for slot in 0..ports.in_count() {
                            ports.send_control(slot, ControlMessage::EndOfStream);
                        }
                        self.phase = Phase::Released;
                        return Ok(StepOutcome::Done);
                    }
                    return Ok(if acted { StepOutcome::Yield } else { StepOutcome::Idle });
                }
                Phase::Released => return Ok(StepOutcome::Done),
            }
        }
    }

    /// The flush transition: `on_flush`, remaining partial pages, data
    /// end-of-stream everywhere, then enter the drain phase.  Never
    /// suspends; its sends ignore credit.
    fn flush<P: LifecyclePorts>(
        &mut self,
        op: &mut dyn Operator,
        ports: &mut P,
        metrics: &mut OperatorMetrics,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let timer = Instant::now();
        op.on_flush(ctx)?;
        metrics.busy += timer.elapsed();
        route_node(ctx, ports, metrics, false);
        for slot in 0..ports.out_count() {
            ports.flush_out(slot, metrics);
            ports.send_eos(slot);
        }
        self.phase = Phase::Draining;
        Ok(())
    }
}

/// Drains every pending control message from downstream, dispatching
/// feedback and result requests to the operator with priority.  Returns
/// whether anything was processed.
pub(crate) fn process_control<P: LifecyclePorts>(
    op: &mut dyn Operator,
    ports: &mut P,
    metrics: &mut OperatorMetrics,
    ctx: &mut OperatorContext,
    after_eos: bool,
    shutdown: &mut bool,
) -> EngineResult<bool> {
    let mut progressed = false;
    for slot in 0..ports.out_count() {
        while ports.control_open(slot) {
            match ports.poll_control(slot) {
                ControlPoll::Message(ControlMessage::Feedback(fb)) => {
                    progressed = true;
                    metrics.feedback_in += 1;
                    let port = ports.out_port(slot);
                    op.on_feedback(port, fb, ctx)?;
                    route_node(ctx, ports, metrics, after_eos);
                }
                ControlPoll::Message(ControlMessage::RequestResults) => {
                    progressed = true;
                    let port = ports.out_port(slot);
                    op.on_request_results(port, ctx)?;
                    route_node(ctx, ports, metrics, after_eos);
                }
                ControlPoll::Message(ControlMessage::Shutdown) => {
                    progressed = true;
                    *shutdown = true;
                }
                ControlPoll::Message(ControlMessage::EndOfStream) | ControlPoll::Closed => {
                    progressed = true;
                    ports.close_control(slot);
                }
                ControlPoll::Empty => break,
            }
        }
    }
    Ok(progressed)
}

/// Routes one operator's buffered emissions and feedback through its ports.
/// `after_eos` marks routing performed during the drain phase: data
/// end-of-stream has already been sent, so late data emissions (from
/// post-flush feedback callbacks) are counted but cannot be delivered.
/// Undeliverable feedback — unconnected port, or upstream gone — is counted
/// in `feedback_dropped`, never silently lost.
pub(crate) fn route_node<P: LifecyclePorts>(
    ctx: &mut OperatorContext,
    ports: &mut P,
    metrics: &mut OperatorMetrics,
    after_eos: bool,
) {
    ctx.drain_emissions(|port, emission| {
        let deliverable = ports.out_slot(port).filter(|&s| !after_eos && ports.out_data_open(s));
        match emission {
            Emission::Item(item) => {
                match &item {
                    StreamItem::Tuple(_) => metrics.tuples_out += 1,
                    StreamItem::Punctuation(_) => metrics.punctuations_out += 1,
                }
                // Unconnected output (sink side-channel), hung-up consumer,
                // or post-EOS emission: count and drop.
                if let Some(slot) = deliverable {
                    ports.push_item(slot, item, metrics);
                }
            }
            Emission::Page(page) => {
                metrics.tuples_out += page.tuple_count() as u64;
                metrics.punctuations_out += page.punctuation_count() as u64;
                if let Some(slot) = deliverable {
                    ports.push_page(slot, page, metrics);
                }
            }
        }
    });
    for (input, fb) in ctx.take_feedback() {
        match ports.in_slot(input) {
            Some(slot) => {
                if ports.send_control(slot, ControlMessage::Feedback(fb)) {
                    metrics.feedback_out += 1;
                } else {
                    metrics.feedback_dropped += 1;
                }
            }
            None => metrics.feedback_dropped += 1,
        }
    }
    for input in ctx.take_result_requests() {
        if let Some(slot) = ports.in_slot(input) {
            ports.send_control(slot, ControlMessage::RequestResults);
        }
    }
    // Broadcasts: control punctuation to every connected output (a
    // partitioner keeping its replicas punctuated) and feedback to every
    // connected input (a merge point fanning feedback out to its replicas).
    // The final target receives the original by move — N targets cost N-1
    // clones, and the single-target broadcast costs none.
    for punctuation in ctx.take_broadcast_punctuations() {
        let targets: Vec<usize> = if after_eos {
            Vec::new()
        } else {
            (0..ports.out_count()).filter(|&s| ports.out_data_open(s)).collect()
        };
        if targets.is_empty() {
            metrics.punctuations_out += 1; // count-and-drop, as for port emissions
            continue;
        }
        let mut remaining = Some(punctuation);
        let last = targets.len() - 1;
        for (k, slot) in targets.into_iter().enumerate() {
            let copy = if k == last {
                remaining.take().expect("one move per broadcast")
            } else {
                remaining.as_ref().expect("clones precede the move").clone()
            };
            metrics.punctuations_out += 1;
            ports.push_item(slot, StreamItem::Punctuation(copy), metrics);
        }
    }
    for fb in ctx.take_broadcast_feedback() {
        if ports.in_count() == 0 {
            metrics.feedback_dropped += 1;
            continue;
        }
        let mut remaining = Some(fb);
        let last = ports.in_count() - 1;
        for slot in 0..ports.in_count() {
            let copy = if slot == last {
                remaining.take().expect("one move per broadcast")
            } else {
                remaining.as_ref().expect("clones precede the move").clone()
            };
            if ports.send_control(slot, ControlMessage::Feedback(copy)) {
                metrics.feedback_out += 1;
            } else {
                metrics.feedback_dropped += 1;
            }
        }
    }
}
