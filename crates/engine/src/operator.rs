//! The operator abstraction.
//!
//! Operators are written against a small push-based callback interface: the
//! executor delivers tuples, embedded punctuation, feedback punctuation and
//! end-of-stream notifications; the operator responds by emitting items and
//! feedback into an [`OperatorContext`], which the executor then routes.
//! Keeping the context as a plain buffer (rather than handing operators raw
//! channel endpoints) lets the same operator code run unchanged under the
//! threaded executor and the deterministic single-threaded executor.

use crate::error::EngineResult;
use crate::page::Page;
use dsms_feedback::{FeedbackPunctuation, FeedbackRoles};
use dsms_punctuation::Punctuation;
use dsms_types::{SchemaRef, Tuple};

/// One element of a data stream: a tuple or an embedded punctuation.
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// A data tuple.
    Tuple(Tuple),
    /// An embedded punctuation.
    Punctuation(Punctuation),
}

impl StreamItem {
    /// The tuple, if this item is one.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Punctuation(_) => None,
        }
    }

    /// The punctuation, if this item is one.
    pub fn as_punctuation(&self) -> Option<&Punctuation> {
        match self {
            StreamItem::Punctuation(p) => Some(p),
            StreamItem::Tuple(_) => None,
        }
    }
}

/// One unit an operator can emit on an output port: a single stream item, or
/// a whole page passed through intact.
///
/// Routing a page as a page (rather than re-pushing its items one by one
/// through the output's [`crate::page::PageBuilder`]) preserves batching
/// across fan-out hops: a `Duplicate` or `Union` that classified an entire
/// input page as pass-through forwards it without per-item work, so the
/// downstream operator still sees full pages and batch-level guard
/// evaluation keeps working.
#[derive(Debug, Clone)]
pub enum Emission {
    /// A single tuple or embedded punctuation.
    Item(StreamItem),
    /// A whole page, forwarded intact.
    Page(Page),
}

/// Whether a source operator has more data to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceState {
    /// The operator is not a source (it has inputs).
    NotASource,
    /// The source produced work this step and has more.
    Producing,
    /// The source has emitted everything.
    Exhausted,
}

/// One unit of keyed operator state extracted at a migration boundary.
///
/// `key` is the operator's partitioning key for this unit (the values the
/// stage's shuffle hashes on), so the elastic-stage machinery can re-route
/// the unit to its new owner after a resize without understanding the
/// payload.  `payload` is opaque to everyone but the operator type that
/// exported it; [`Operator::import_state`] downcasts it back.
pub struct StateEntry {
    /// The partitioning-key values this state unit belongs to, in the
    /// stage's shuffle-key order.
    pub key: Vec<dsms_types::Value>,
    /// Operator-private state, reinstalled via [`Operator::import_state`].
    pub payload: Box<dyn std::any::Any + Send>,
}

impl std::fmt::Debug for StateEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateEntry").field("key", &self.key).finish_non_exhaustive()
    }
}

/// Buffer the executor hands to every operator callback; the operator records
/// its outputs here and the executor routes them afterwards.
#[derive(Debug, Default)]
pub struct OperatorContext {
    emitted: Vec<(usize, Emission)>,
    feedback: Vec<(usize, FeedbackPunctuation)>,
    request_results: Vec<usize>,
    broadcast_punctuations: Vec<Punctuation>,
    broadcast_feedback: Vec<FeedbackPunctuation>,
    queue_depth: u64,
}

impl OperatorContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        OperatorContext::default()
    }

    /// Pages currently waiting on this operator's input queues, as observed
    /// by the executor just before the current callback batch.  Adaptive
    /// operators (an elastic shuffle reporting its backlog) read this;
    /// everyone else can ignore it.  Zero in unit tests and for sources.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth
    }

    /// Records the observed input-queue depth for the next callbacks (called
    /// by the executors' lifecycle sweep).
    pub fn set_queue_depth(&mut self, depth: u64) {
        self.queue_depth = depth;
    }

    /// Emits a tuple on the given output port.
    pub fn emit(&mut self, output: usize, tuple: Tuple) {
        self.emitted.push((output, Emission::Item(StreamItem::Tuple(tuple))));
    }

    /// Emits an embedded punctuation on the given output port.
    pub fn emit_punctuation(&mut self, output: usize, punctuation: Punctuation) {
        self.emitted.push((output, Emission::Item(StreamItem::Punctuation(punctuation))));
    }

    /// Emits a whole page on the given output port, to be forwarded intact.
    ///
    /// Pass-through operators (duplicate, union) use this from
    /// [`Operator::on_page`] when an entire input page survives their guard
    /// check unchanged: the executor routes the page without re-batching it,
    /// so batching is preserved across the hop.  Emission order relative to
    /// [`OperatorContext::emit`] / [`OperatorContext::emit_punctuation`] is
    /// preserved.
    pub fn emit_page(&mut self, output: usize, page: Page) {
        self.emitted.push((output, Emission::Page(page)));
    }

    /// Sends feedback punctuation upstream on the given *input* port (against
    /// the data flow, via the control channel).
    pub fn send_feedback(&mut self, input: usize, feedback: FeedbackPunctuation) {
        self.feedback.push((input, feedback));
    }

    /// Sends an on-demand result request upstream on the given input port.
    pub fn request_results(&mut self, input: usize) {
        self.request_results.push(input);
    }

    /// Emits an embedded punctuation on **every connected output port**.
    ///
    /// The executor expands the broadcast through its routing table, so the
    /// operator does not need to know which of its output ports are
    /// connected.  Partitioning operators use this to keep control
    /// punctuation flowing to all replicas while data follows the hash
    /// route: a punctuation describes a subset of the whole stream, and the
    /// partitioned streams are subsets of it, so the assertion holds on
    /// every partition.
    pub fn broadcast_punctuation(&mut self, punctuation: Punctuation) {
        self.broadcast_punctuations.push(punctuation);
    }

    /// Sends feedback punctuation upstream on **every connected input port**.
    ///
    /// The merge side of a partitioned stage uses this to fan feedback from
    /// its single consumer out to all N upstream replicas: the merged stream
    /// is the union of the replica streams, so a subset assumed away (or
    /// desired, or demanded) downstream applies to each replica equally.
    pub fn broadcast_feedback(&mut self, feedback: FeedbackPunctuation) {
        self.broadcast_feedback.push(feedback);
    }

    /// Number of stream items emitted so far (all ports).  A page emitted via
    /// [`OperatorContext::emit_page`] counts as the number of items it holds.
    pub fn emitted_len(&self) -> usize {
        self.emitted
            .iter()
            .map(|(_, e)| match e {
                Emission::Item(_) => 1,
                Emission::Page(p) => p.tuple_count() + p.punctuation_count(),
            })
            .sum()
    }

    /// Drains the emitted items (used by the executor and by tests), exploding
    /// pages emitted via [`OperatorContext::emit_page`] into their items.
    pub fn take_emitted(&mut self) -> Vec<(usize, StreamItem)> {
        let mut out = Vec::with_capacity(self.emitted.len());
        for (port, emission) in self.emitted.drain(..) {
            match emission {
                Emission::Item(item) => out.push((port, item)),
                Emission::Page(page) => out.extend(page.into_iter().map(|item| (port, item))),
            }
        }
        out
    }

    /// Drains the emitted items in place, handing each to `f` and keeping the
    /// buffer's capacity for the next operator callback, exploding pages into
    /// their items.  Routers that can forward whole pages use
    /// [`OperatorContext::drain_emissions`] instead.
    pub fn drain_emitted(&mut self, mut f: impl FnMut(usize, StreamItem)) {
        for (port, emission) in self.emitted.drain(..) {
            match emission {
                Emission::Item(item) => f(port, item),
                Emission::Page(page) => {
                    for item in page {
                        f(port, item);
                    }
                }
            }
        }
    }

    /// Drains the raw emissions in place — items *and* intact pages — keeping
    /// the buffer's capacity for the next operator callback.  The executors
    /// route through this after *every* callback, so reallocating the buffer
    /// each time (as [`take_emitted`](Self::take_emitted) does) would put an
    /// alloc/free pair per callback on the hot path.
    pub fn drain_emissions(&mut self, mut f: impl FnMut(usize, Emission)) {
        for (port, emission) in self.emitted.drain(..) {
            f(port, emission);
        }
    }

    /// Drains the outgoing feedback (used by the executor).
    pub fn take_feedback(&mut self) -> Vec<(usize, FeedbackPunctuation)> {
        std::mem::take(&mut self.feedback)
    }

    /// Drains the outgoing result requests (used by the executor).
    pub fn take_result_requests(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.request_results)
    }

    /// Drains the broadcast punctuations (used by the executor).
    pub fn take_broadcast_punctuations(&mut self) -> Vec<Punctuation> {
        std::mem::take(&mut self.broadcast_punctuations)
    }

    /// Drains the broadcast feedback (used by the executor).
    pub fn take_broadcast_feedback(&mut self) -> Vec<FeedbackPunctuation> {
        std::mem::take(&mut self.broadcast_feedback)
    }

    /// Discards every buffered output — emissions, feedback, result requests
    /// and broadcasts — keeping the buffers' capacity.  The recovery path
    /// uses this after a failed callback so half-produced output from the
    /// failed dispatch never reaches downstream; the replayed suffix
    /// regenerates it.
    pub fn clear(&mut self) {
        self.emitted.clear();
        self.feedback.clear();
        self.request_results.clear();
        self.broadcast_punctuations.clear();
        self.broadcast_feedback.clear();
    }
}

/// A stream operator.
///
/// All callbacks receive the input (or output) port index so that multi-input
/// operators (joins, unions) and multi-output operators (duplicate, split) can
/// tell their connections apart.  Implementations must be `Send` so the
/// threaded executor can move them onto their own thread.
pub trait Operator: Send {
    /// The operator's display name (used in metrics and errors).
    fn name(&self) -> &str;

    /// Number of input ports.
    fn inputs(&self) -> usize;

    /// Number of output ports.
    fn outputs(&self) -> usize {
        1
    }

    /// True when the plan is only valid if **every** output port of this
    /// operator is connected.  Unconnected outputs are normally allowed
    /// (their emissions are discarded), but an operator that *routes* its
    /// input across its outputs — a hash partitioner fanning out to N
    /// replicas — would silently lose a fixed slice of the stream if a port
    /// were left dangling, so [`crate::QueryPlan::validate`] rejects such
    /// plans with a descriptive error instead.
    fn must_connect_all_outputs(&self) -> bool {
        false
    }

    /// The feedback roles this operator declares (paper Section 1: producer,
    /// exploiter, relayer).  The default — [`FeedbackRoles::NONE`] — is the
    /// feedback-unaware operator: it has no feedback port, so feedback sent to
    /// it is silently ignored.  Plan builders use the declaration to reject
    /// feedback subscriptions on unaware operators at composition time, and
    /// [`crate::QueryPlan::dot`] uses it to draw the feedback (control)
    /// edges.  Operators whose feedback behaviour is configurable (e.g. an
    /// aggregate's F0–F3 mode) should declare the roles of their *current*
    /// configuration.
    fn feedback_roles(&self) -> FeedbackRoles {
        FeedbackRoles::NONE
    }

    /// The schema this operator expects on input port `input`, if it declares
    /// one.  `None` means "any schema" (the operator is schema-agnostic or
    /// cannot know, e.g. a generic wrapper).  Plan builders compare declared
    /// schemas across each edge and reject mismatched connections at
    /// composition time instead of failing mid-run.
    fn schema_in(&self, input: usize) -> Option<SchemaRef> {
        let _ = input;
        None
    }

    /// The schema this operator produces on output port `output`, if it
    /// declares one.  Plan builders use it to thread schema metadata through
    /// fluent composition without the caller restating it at every step.
    fn schema_out(&self, output: usize) -> Option<SchemaRef> {
        let _ = output;
        None
    }

    /// Called for every tuple arriving on `input`.
    fn on_tuple(
        &mut self,
        input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()>;

    /// Called with a whole page of stream items arriving on `input`.  Both
    /// executors move data between operators page-at-a-time and dispatch
    /// through this hook; the default replays the page in arrival order and
    /// forwards each item to [`Operator::on_tuple`] /
    /// [`Operator::on_punctuation`], which is correct for every operator.
    /// Operators with columnar kernels (select, project, shuffle, aggregate,
    /// the sinks) override it to classify the whole batch against feedback
    /// guards via [`Page::column_summary`] and process the row lane in one
    /// tight loop — see `docs/DATA_LAYOUT.md` for the kernel protocol.
    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        for item in page {
            match item {
                StreamItem::Tuple(tuple) => self.on_tuple(input, tuple, ctx)?,
                StreamItem::Punctuation(punctuation) => {
                    self.on_punctuation(input, punctuation, ctx)?
                }
            }
        }
        Ok(())
    }

    /// Called for every embedded punctuation arriving on `input`.  The default
    /// forwards the punctuation unchanged on output port 0, which is correct
    /// for stateless operators whose output schema equals their input schema.
    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let _ = input;
        ctx.emit_punctuation(0, punctuation);
        Ok(())
    }

    /// Called when feedback punctuation arrives from the consumer attached to
    /// `output`.  Feedback-unaware operators keep the default (ignore), which
    /// also means they cannot relay it — exactly the behaviour the paper
    /// describes for unaware operators.
    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        let _ = (output, feedback, ctx);
        Ok(())
    }

    /// Called when an on-demand result request arrives from the consumer
    /// attached to `output` (paper Example 4).  Default: ignore.
    fn on_request_results(&mut self, output: usize, ctx: &mut OperatorContext) -> EngineResult<()> {
        let _ = (output, ctx);
        Ok(())
    }

    /// Called once all inputs have reached end-of-stream, before the
    /// end-of-stream is forwarded downstream.  Stateful operators emit any
    /// remaining results here.
    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        let _ = ctx;
        Ok(())
    }

    /// Source stepping: called repeatedly by the executor for operators with
    /// zero inputs.  Produce a bounded amount of work per call and return
    /// [`SourceState::Producing`] until done.
    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        let _ = ctx;
        Ok(SourceState::NotASource)
    }

    /// Feedback statistics to fold into the operator's metrics at the end of
    /// the run, if the operator keeps any.
    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        None
    }

    /// Extracts this operator's keyed state at a migration boundary,
    /// draining it: after this call the operator holds no keyed state and
    /// behaves like a fresh instance.  Each returned [`StateEntry`] carries
    /// the partitioning-key values of one state unit so the elastic-stage
    /// machinery can re-route it; the payload is reinstalled (possibly on a
    /// different replica) via [`Operator::import_state`].  The default — for
    /// stateless operators — exports nothing.
    fn export_state(&mut self) -> Vec<StateEntry> {
        Vec::new()
    }

    /// Reinstalls state units previously drained by
    /// [`Operator::export_state`] from a same-typed replica.  Entries whose
    /// payload the operator does not recognize are an error (the migration
    /// must not silently drop state).  The default accepts only an empty set.
    fn import_state(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        if entries.is_empty() {
            Ok(())
        } else {
            Err(crate::error::EngineError::OperatorFailed {
                operator: self.name().to_string(),
                detail: format!(
                    "operator cannot import {} migrated state entries (no import_state impl)",
                    entries.len()
                ),
            })
        }
    }

    /// Elastic-stage statistics to fold into the operator's metrics at the
    /// end of the run, if this operator coordinates an elastic stage.
    fn elastic_stats(&self) -> Option<crate::metrics::ElasticStats> {
        None
    }

    /// Whether this operator supports supervised restart: its
    /// [`Operator::checkpoint`] / [`Operator::restore`] pair round-trips its
    /// entire observable state, and it holds no obligations the recovery
    /// replay cannot regenerate.  [`crate::QueryPlan::validate`] rejects a
    /// [`crate::RecoveryPolicy::Restart`] policy on a non-restartable
    /// operator.  The default is `false`; stateless operators and those with
    /// a full checkpoint implementation opt in.
    fn restartable(&self) -> bool {
        false
    }

    /// Snapshots this operator's state for supervised recovery, *without*
    /// draining it (unlike [`Operator::export_state`], which is a migration
    /// hand-off).  Called at punctuation-epoch boundaries; the snapshot must
    /// capture everything [`Operator::restore`] needs to make a failed
    /// instance behave as if it had just consumed the checkpointed prefix.
    /// Recovery snapshots need no per-key routing, so a single entry holding
    /// the whole state (with an empty key) is fine.  The default — for
    /// stateless operators — snapshots nothing.
    fn checkpoint(&self) -> EngineResult<Vec<StateEntry>> {
        Ok(Vec::new())
    }

    /// Resets this operator to its initial state and reinstalls a
    /// [`Operator::checkpoint`] snapshot.  Called with an empty set when the
    /// failure predates the first checkpoint (full reset).  The default
    /// accepts only the empty set.
    fn restore(&mut self, entries: Vec<StateEntry>) -> EngineResult<()> {
        if entries.is_empty() {
            Ok(())
        } else {
            Err(crate::error::EngineError::OperatorFailed {
                operator: self.name().to_string(),
                detail: format!(
                    "operator cannot restore {} checkpointed state entries (no restore impl)",
                    entries.len()
                ),
            })
        }
    }

    /// Whether this operator absorbs a sourceward
    /// [`crate::ControlMessage::Shutdown`] arriving on the given output
    /// port's control channel instead of shutting down itself.
    ///
    /// A shared fan-out absorbs per-port shutdowns — a failed (quarantined)
    /// query branch tears itself down toward the fan-out, which detaches
    /// that port (relaying any feedback the detach releases via `ctx`) and
    /// keeps serving its siblings.  The default `false` keeps the
    /// pre-recovery behaviour: any Shutdown stops the whole operator.
    fn absorb_shutdown(&mut self, output: usize, ctx: &mut OperatorContext) -> bool {
        let _ = (output, ctx);
        false
    }

    /// A structural fingerprint for plan-prefix deduplication, if this
    /// operator supports it.
    ///
    /// Two operator instances with equal fingerprints must be observably
    /// interchangeable: same name, same configuration, same output for the
    /// same input.  A multi-query manager uses the fingerprints to recognize
    /// identical `source → select → project` prefixes across independently
    /// built plans and execute them once behind a shared fan-out.  The
    /// default — `None` — marks the operator as not dedupe-able, which is
    /// always safe: a prefix chain simply ends at the first unfingerprinted
    /// operator.  Stateless operators whose behaviour is fully determined by
    /// their constructor arguments (select, project) should hash those
    /// arguments with [`dsms_types::FixedHasher`] so fingerprints are stable
    /// across processes.
    fn fingerprint(&self) -> Option<u64> {
        None
    }

    /// The name of the shared managed source this operator stands in for, if
    /// it is a placeholder rather than a real source.
    ///
    /// A multi-query manager lets plans reference long-lived named sources it
    /// owns; at splice time the placeholder node is replaced by the actual
    /// source operator (executed once for all sharers).  Real operators keep
    /// the default `None`.
    fn shared_source(&self) -> Option<&str> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::Pattern;
    use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Value};

    fn schema() -> SchemaRef {
        Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn tuple(v: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(v)])
    }

    /// Minimal pass-through operator used to exercise the trait defaults.
    struct PassThrough;

    impl Operator for PassThrough {
        fn name(&self) -> &str {
            "pass"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn on_tuple(
            &mut self,
            _input: usize,
            tuple: Tuple,
            ctx: &mut OperatorContext,
        ) -> EngineResult<()> {
            ctx.emit(0, tuple);
            Ok(())
        }
    }

    #[test]
    fn context_buffers_and_drains() {
        let mut ctx = OperatorContext::new();
        ctx.emit(0, tuple(1));
        ctx.emit_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
        );
        ctx.send_feedback(0, FeedbackPunctuation::assumed(Pattern::all_wildcards(schema()), "t"));
        ctx.request_results(0);
        assert_eq!(ctx.emitted_len(), 2);
        assert_eq!(ctx.take_emitted().len(), 2);
        assert_eq!(ctx.take_feedback().len(), 1);
        assert_eq!(ctx.take_result_requests(), vec![0]);
        assert_eq!(ctx.emitted_len(), 0, "drained");
    }

    #[test]
    fn context_buffers_broadcasts_separately() {
        let mut ctx = OperatorContext::new();
        ctx.broadcast_punctuation(
            Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
        );
        ctx.broadcast_feedback(FeedbackPunctuation::assumed(
            Pattern::all_wildcards(schema()),
            "merge",
        ));
        assert_eq!(ctx.emitted_len(), 0, "broadcasts are not per-port emissions");
        assert_eq!(ctx.take_broadcast_punctuations().len(), 1);
        assert_eq!(ctx.take_broadcast_feedback().len(), 1);
        assert!(ctx.take_broadcast_punctuations().is_empty(), "drained");
        assert!(ctx.take_broadcast_feedback().is_empty(), "drained");
    }

    #[test]
    fn trait_defaults_are_sensible() {
        let mut op = PassThrough;
        let mut ctx = OperatorContext::new();
        assert_eq!(op.outputs(), 1);
        assert!(!op.must_connect_all_outputs());
        assert_eq!(op.feedback_roles(), FeedbackRoles::NONE, "unaware by default");
        assert!(op.schema_in(0).is_none(), "schema-agnostic by default");
        assert!(op.schema_out(0).is_none(), "schema-agnostic by default");
        op.on_tuple(0, tuple(7), &mut ctx).unwrap();
        op.on_punctuation(
            0,
            Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
            &mut ctx,
        )
        .unwrap();
        // default feedback handler ignores
        op.on_feedback(
            0,
            FeedbackPunctuation::assumed(Pattern::all_wildcards(schema()), "x"),
            &mut ctx,
        )
        .unwrap();
        op.on_request_results(0, &mut ctx).unwrap();
        op.on_flush(&mut ctx).unwrap();
        assert_eq!(op.poll_source(&mut ctx).unwrap(), SourceState::NotASource);
        assert!(op.feedback_stats().is_none());
        assert_eq!(ctx.take_emitted().len(), 2);
    }

    #[test]
    fn default_on_page_dispatches_per_item() {
        let mut op = PassThrough;
        let mut ctx = OperatorContext::new();
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(1)),
            StreamItem::Punctuation(
                Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
            ),
            StreamItem::Tuple(tuple(2)),
        ]);
        op.on_page(0, page, &mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 3, "two tuples + forwarded punctuation");
    }

    #[test]
    fn emitted_pages_count_and_explode_like_items() {
        let mut ctx = OperatorContext::new();
        ctx.emit(0, tuple(1));
        ctx.emit_page(
            1,
            Page::from_items(vec![
                StreamItem::Tuple(tuple(2)),
                StreamItem::Punctuation(
                    Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
                ),
            ]),
        );
        assert_eq!(ctx.emitted_len(), 3, "page contributes its item count");
        let mut pages = 0;
        let mut items = 0;
        ctx.drain_emissions(|port, emission| match emission {
            Emission::Item(_) => {
                assert_eq!(port, 0);
                items += 1;
            }
            Emission::Page(p) => {
                assert_eq!(port, 1);
                assert_eq!(p.tuple_count(), 1);
                pages += 1;
            }
        });
        assert_eq!((items, pages), (1, 1));

        ctx.emit_page(2, Page::from_items(vec![StreamItem::Tuple(tuple(3))]));
        let exploded = ctx.take_emitted();
        assert_eq!(exploded.len(), 1);
        assert_eq!(exploded[0].0, 2, "explosion preserves the port");
        assert_eq!(ctx.emitted_len(), 0, "drained");
    }

    #[test]
    fn stream_item_accessors() {
        let item = StreamItem::Tuple(tuple(1));
        assert!(item.as_tuple().is_some());
        assert!(item.as_punctuation().is_none());
        let p = StreamItem::Punctuation(
            Punctuation::progress(schema(), "timestamp", Timestamp::EPOCH).unwrap(),
        );
        assert!(p.as_punctuation().is_some());
        assert!(p.as_tuple().is_none());
    }
}
