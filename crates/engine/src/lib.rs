//! # dsms-engine
//!
//! The push-based stream-engine substrate modelled on NiagaraST's query
//! execution architecture (paper Section 5):
//!
//! * operators connected by **inter-operator queues of columnar pages** —
//!   batching limits context switching; a page separates a row lane of
//!   zero-copy tuple handles from a punctuation lane and serves per-column
//!   min/max/null summaries for batch-level guard evaluation; it is flushed
//!   when it is full *or* when a punctuation is written to it ([`page`],
//!   [`queue`], and `docs/DATA_LAYOUT.md` for the layout contract);
//! * an out-of-band **control channel** per connection carrying high-priority
//!   messages in both directions — shutdown and end-of-stream downstream,
//!   feedback punctuation and shutdown upstream ([`control`]);
//! * a per-operator [`operator::Operator`] trait with explicit callbacks for
//!   tuples, embedded punctuation, feedback punctuation and end-of-stream;
//! * a [`plan::QueryPlan`] IR describing the operator graph, plus the fluent
//!   schema-checked [`builder::StreamBuilder`] / [`builder::Stream`] layer
//!   that lowers into it (with first-class feedback subscriptions); and
//! * three executors sharing one operator lifecycle (the `lifecycle`
//!   module's active → flush → drain → release machine):
//!   [`executor::ThreadedExecutor`] runs one OS thread per operator
//!   (NiagaraST's model) event-driven — idle threads block on a
//!   multi-receiver channel wait, and a sink→source drain protocol delivers
//!   even flush-time feedback before threads exit;
//!   [`pooled::PooledExecutor`] runs the whole plan on a fixed worker pool
//!   with per-worker run queues and work stealing, scheduling operators as
//!   tasks woken by queue readiness events, so plans far wider than the
//!   machine still run without a thread per operator; and
//!   [`executor::SyncExecutor`] runs the same plans deterministically on a
//!   single thread for reproducible tests.
//!
//! The engine knows nothing about specific operators; those live in
//! `dsms-operators`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod control;
pub mod error;
pub mod executor;
mod lifecycle;
pub mod metrics;
pub mod operator;
pub mod page;
pub mod plan;
pub mod pooled;
pub mod queue;

pub use builder::{Stream, StreamBuilder};
pub use control::ControlMessage;
pub use error::{EngineError, EngineResult};
pub use executor::{ExecutionReport, SyncExecutor, ThreadedExecutor};
pub use metrics::{ElasticStats, OperatorMetrics, RecoverySummary, SchedulerSummary};
pub use operator::{Emission, Operator, OperatorContext, SourceState, StateEntry, StreamItem};
pub use page::{ColumnarPage, Page, PageBuilder, PageIter};
pub use plan::{Edge, NodeId, PlanNode, PlanParts, QueryPlan, RecoveryPolicy};
pub use pooled::PooledExecutor;
pub use queue::DataQueue;
