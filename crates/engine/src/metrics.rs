//! Per-operator execution metrics.

use dsms_feedback::FeedbackStats;
use std::time::Duration;

/// Counters collected for each operator during execution.
#[derive(Debug, Clone, Default)]
pub struct OperatorMetrics {
    /// Operator name.
    pub operator: String,
    /// Tuples received across all inputs.
    pub tuples_in: u64,
    /// Tuples emitted across all outputs.
    pub tuples_out: u64,
    /// Embedded punctuations received.
    pub punctuations_in: u64,
    /// Embedded punctuations emitted.
    pub punctuations_out: u64,
    /// Pages received.
    pub pages_in: u64,
    /// Pages emitted.
    pub pages_out: u64,
    /// Feedback messages received (from downstream).
    pub feedback_in: u64,
    /// Feedback messages sent (to upstream).
    pub feedback_out: u64,
    /// Feedback messages this operator sent that the executor could not
    /// deliver.  Cooperating operators must never lose feedback silently
    /// (the paper's central delivery guarantee), so both executors deliver
    /// feedback to upstream operators even after those operators have
    /// flushed; this counter records the residue that is *genuinely*
    /// undeliverable — feedback named on an input port with no connected
    /// edge, or (threaded executor only) sent on a connection whose upstream
    /// thread already exited after a failure.  A healthy run reports 0.
    pub feedback_dropped: u64,
    /// Time spent inside operator callbacks.
    pub busy: Duration,
    /// Scheduler steps executed for this operator (pooled executor): each
    /// step runs the operator's lifecycle machine until it yields its budget,
    /// goes idle, or finishes.  Sync/threaded runs leave this 0.
    pub sched_steps: u64,
    /// Steps executed on a worker other than the operator's home worker
    /// (pooled executor work stealing).  Sync/threaded runs leave this 0.
    pub sched_steals: u64,
    /// Largest number of pages observed waiting on any of this operator's
    /// input queues, sampled by the executor's lifecycle sweep just before
    /// each input poll.  Populated by all three executors; sources (no
    /// inputs) report 0.
    pub max_queue_depth: u64,
    /// Supervised restarts performed for this operator: each one restored
    /// the last punctuation-epoch checkpoint and replayed the retained
    /// post-checkpoint suffix.  0 for fail-fast operators (the default).
    pub restarts: u64,
    /// Checkpoints taken at punctuation-epoch boundaries (only operators
    /// under a `Restart` recovery policy take checkpoints).
    pub checkpoints_taken: u64,
    /// Tuples re-dispatched from the retention buffer during restarts.
    pub tuples_replayed: u64,
    /// Terminal failure detail for a quarantined operator: set when the
    /// operator exhausted its restart budget under quarantine mode and was
    /// tombstoned (its branch drained) instead of aborting the run.  `None`
    /// for healthy operators and for fail-fast aborts (those surface as the
    /// run's error instead).
    pub failure: Option<String>,
    /// Feedback-layer statistics reported by the operator, if any.
    pub feedback: FeedbackStats,
    /// Elastic-stage statistics, reported by the operator coordinating an
    /// elastic partitioned stage (its shuffle).  `None` everywhere else.
    pub elastic: Option<ElasticStats>,
}

/// Counters for one elastic partitioned stage, kept by its controller and
/// folded into the coordinating operator's [`OperatorMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElasticStats {
    /// Resizes committed (routing actually switched width).
    pub resizes: u64,
    /// Resizes cancelled because the stream ended mid-handshake (the commit
    /// marker re-installed the old width).
    pub cancelled: u64,
    /// Keyed state units that changed replica across all committed resizes.
    pub migrated_groups: u64,
    /// Committed `(epoch, partitions)` pairs, in commit order — the stage's
    /// width history.
    pub epochs: Vec<(u64, usize)>,
}

/// Run-wide recovery counters, aggregated over every operator's metrics —
/// see [`crate::executor::ExecutionReport::recovery`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Total supervised restarts across all operators.
    pub restarts: u64,
    /// Total punctuation-epoch checkpoints taken.
    pub checkpoints_taken: u64,
    /// Total tuples re-dispatched from retention buffers during restarts.
    pub tuples_replayed: u64,
    /// Names of operators tombstoned after exhausting their restart budget
    /// (quarantine mode), with their terminal failure details.
    pub quarantined: Vec<(String, String)>,
}

/// Pool-wide scheduler counters, reported by the pooled executor (see
/// [`crate::executor::ExecutionReport::scheduler`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerSummary {
    /// Number of worker threads the pool ran with.
    pub workers: usize,
    /// Task steps executed on a worker other than the task's home worker.
    pub steals: u64,
    /// Times a worker parked because no runnable task was available.
    pub parks: u64,
}

impl OperatorMetrics {
    /// Creates metrics for the named operator.
    pub fn new(operator: impl Into<String>) -> Self {
        OperatorMetrics { operator: operator.into(), ..Default::default() }
    }

    /// Selectivity proxy: output tuples per input tuple.
    pub fn selectivity(&self) -> f64 {
        if self.tuples_in == 0 {
            0.0
        } else {
            self.tuples_out as f64 / self.tuples_in as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_handles_zero_input() {
        let mut m = OperatorMetrics::new("SELECT");
        assert_eq!(m.selectivity(), 0.0);
        m.tuples_in = 10;
        m.tuples_out = 4;
        assert!((m.selectivity() - 0.4).abs() < 1e-12);
        assert_eq!(m.operator, "SELECT");
    }
}
