//! Out-of-band control messages.
//!
//! NiagaraST supports control messages flowing both directions in the operator
//! tree; they are out-of-band, given high priority and processed before
//! pending tuples (paper Section 5).  Downstream (with the data flow) they
//! carry end-of-stream and shutdown; upstream (against the data flow) they
//! carry **feedback punctuation** and shutdown.  The paper's initial feedback
//! implementation adds a new control-message type for assumed punctuation and
//! serializes the punctuation as the message body — here the feedback
//! punctuation is carried natively.

use dsms_feedback::FeedbackPunctuation;
use std::fmt;

/// A control message travelling between two adjacent operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// The sender of this control stream is done.  Downstream (on the data
    /// queue) it means the producer has finished and no more pages will
    /// arrive.  Upstream (on the control channel) it is the threaded
    /// executor's *drain handshake*: the consumer promises it will send no
    /// further control messages on this connection, releasing the producer
    /// from its post-flush drain phase.
    EndOfStream,
    /// Either direction: tear the query down.  The threaded executor sends
    /// it upstream when an operator fails, so producers stop generating data
    /// nobody will read.
    Shutdown,
    /// Upstream: feedback punctuation (assumed / desired / demanded) from the
    /// consumer to the producer of a connection.
    Feedback(FeedbackPunctuation),
    /// Upstream: an on-demand result request (paper Example 4) — ask the
    /// producer to emit whatever results it can for the current state.
    RequestResults,
}

impl ControlMessage {
    /// Short name for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            ControlMessage::EndOfStream => "end-of-stream",
            ControlMessage::Shutdown => "shutdown",
            ControlMessage::Feedback(_) => "feedback",
            ControlMessage::RequestResults => "request-results",
        }
    }

    /// True for messages that flow *exclusively* upstream (against the data
    /// flow).  `EndOfStream` and `Shutdown` travel in both directions.
    pub fn flows_upstream(&self) -> bool {
        matches!(self, ControlMessage::Feedback(_) | ControlMessage::RequestResults)
    }
}

impl fmt::Display for ControlMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlMessage::Feedback(fb) => write!(f, "feedback {fb}"),
            other => write!(f, "{}", other.kind()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_punctuation::Pattern;
    use dsms_types::{DataType, Schema};

    #[test]
    fn kinds_and_directions() {
        assert_eq!(ControlMessage::EndOfStream.kind(), "end-of-stream");
        assert!(!ControlMessage::EndOfStream.flows_upstream());
        assert!(!ControlMessage::Shutdown.flows_upstream());
        assert!(ControlMessage::RequestResults.flows_upstream());

        let schema = Schema::shared(&[("v", DataType::Int)]);
        let fb = FeedbackPunctuation::assumed(Pattern::all_wildcards(schema), "sink");
        let msg = ControlMessage::Feedback(fb);
        assert!(msg.flows_upstream());
        assert_eq!(msg.kind(), "feedback");
        assert!(msg.to_string().contains("¬"));
    }
}
