//! Engine error types.

use dsms_feedback::FeedbackError;
use dsms_types::TypeError;
use std::fmt;

/// Result alias used throughout the engine.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised while building or executing a query plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A lower-level type/schema error.
    Type(TypeError),
    /// A feedback-layer error.
    Feedback(FeedbackError),
    /// The query plan is malformed (dangling ports, cycles, unknown nodes).
    InvalidPlan {
        /// Description of the problem.
        detail: String,
    },
    /// An operator failed during execution.
    OperatorFailed {
        /// The operator's name.
        operator: String,
        /// Description of the failure.
        detail: String,
    },
    /// An operator thread panicked or a channel was unexpectedly closed.
    ExecutionFailed {
        /// Description of the failure.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Type(e) => write!(f, "{e}"),
            EngineError::Feedback(e) => write!(f, "{e}"),
            EngineError::InvalidPlan { detail } => write!(f, "invalid plan: {detail}"),
            EngineError::OperatorFailed { operator, detail } => {
                write!(f, "operator `{operator}` failed: {detail}")
            }
            EngineError::ExecutionFailed { detail } => write!(f, "execution failed: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TypeError> for EngineError {
    fn from(e: TypeError) -> Self {
        EngineError::Type(e)
    }
}

impl From<FeedbackError> for EngineError {
    fn from(e: FeedbackError) -> Self {
        EngineError::Feedback(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = TypeError::DuplicateAttribute { name: "x".into() }.into();
        assert!(e.to_string().contains("x"));
        let e: EngineError = FeedbackError::RetractionUnsupported.into();
        assert!(e.to_string().contains("retraction"));
        let e = EngineError::InvalidPlan { detail: "dangling port".into() };
        assert!(e.to_string().contains("dangling"));
        let e = EngineError::OperatorFailed { operator: "JOIN".into(), detail: "boom".into() };
        assert!(e.to_string().contains("JOIN"));
    }
}
