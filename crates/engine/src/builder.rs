//! Fluent, schema-checked plan composition.
//!
//! [`QueryPlan`] is the engine's low-level IR: raw node ids, explicit port
//! numbers, and no notion of what flows along an edge.  [`StreamBuilder`] and
//! [`Stream`] layer a typed composition API on top of it:
//!
//! * every `Stream` carries the [`SchemaRef`] of the data on its edge, so a
//!   connection whose endpoint declares a different schema
//!   ([`Operator::schema_in`]) is rejected **when the edge is drawn**, with an
//!   error naming both operators — not as a mid-run tuple error;
//! * feedback is first-class: [`Stream::with_feedback`] declares, at
//!   composition time, that the consumer attached next will issue the given
//!   [`FeedbackSpec`] upstream — and it is rejected immediately if the
//!   stream's producer declares no feedback port
//!   ([`Operator::feedback_roles`]), which would otherwise be a silent no-op;
//! * [`StreamBuilder::build`] lowers to a validated [`QueryPlan`], so dangling
//!   partition outputs and cycles also surface before an executor is chosen.
//!
//! The raw `QueryPlan` API remains public and stable — it is the escape hatch
//! for topologies the fluent surface does not cover, and the IR the builder
//! lowers into.
//!
//! Operator-library sugar (`.select(…)`, `.window_avg(…)`, `.partitioned(…)`)
//! lives in `dsms-operators`' `StreamOps` extension trait, built entirely on
//! the generic [`Stream::apply`] / [`Stream::merge`] / [`Stream::sink`]
//! surface below.
//!
//! # Examples
//!
//! A source → filter → sink pipeline with a composition-time feedback
//! subscription.  (Operator-library users would write this with `StreamOps`
//! sugar; here the operators are hand-rolled to keep the example inside the
//! engine crate.)
//!
//! ```
//! use dsms_engine::{
//!     EngineResult, Operator, OperatorContext, SourceState, StreamBuilder, SyncExecutor,
//! };
//! use dsms_feedback::{FeedbackRoles, FeedbackSpec};
//! use dsms_punctuation::Pattern;
//! use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Tuple, Value};
//!
//! fn schema() -> SchemaRef {
//!     Schema::shared(&[("ts", DataType::Timestamp), ("v", DataType::Int)])
//! }
//!
//! /// Replays 10 tuples; exploits assumed feedback by declaring the role.
//! struct Numbers(i64);
//! impl Operator for Numbers {
//!     fn name(&self) -> &str {
//!         "numbers"
//!     }
//!     fn inputs(&self) -> usize {
//!         0
//!     }
//!     fn feedback_roles(&self) -> FeedbackRoles {
//!         FeedbackRoles::exploiter()
//!     }
//!     fn schema_out(&self, _: usize) -> Option<SchemaRef> {
//!         Some(schema())
//!     }
//!     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
//!         Ok(())
//!     }
//!     fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
//!         if self.0 >= 10 {
//!             return Ok(SourceState::Exhausted);
//!         }
//!         let t = Tuple::new(
//!             schema(),
//!             vec![Value::Timestamp(Timestamp::from_secs(self.0)), Value::Int(self.0)],
//!         );
//!         self.0 += 1;
//!         ctx.emit(0, t);
//!         Ok(SourceState::Producing)
//!     }
//! }
//!
//! /// Counts arrivals.
//! struct Count;
//! impl Operator for Count {
//!     fn name(&self) -> &str {
//!         "count"
//!     }
//!     fn inputs(&self) -> usize {
//!         1
//!     }
//!     fn outputs(&self) -> usize {
//!         0
//!     }
//!     fn schema_in(&self, _: usize) -> Option<SchemaRef> {
//!         Some(schema())
//!     }
//!     fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
//!         Ok(())
//!     }
//! }
//!
//! let builder = StreamBuilder::new().with_page_capacity(4);
//! builder
//!     .source(Numbers(0))?
//!     // Declared at composition time: after 3 tuples, the sink assumes the
//!     // whole stream away.  Rejected here (not silently ignored at run
//!     // time) if `numbers` declared no feedback port.
//!     .with_feedback(FeedbackSpec::assumed(Pattern::all_wildcards(schema())).after_tuples(3))?
//!     .sink(Count)?;
//! let plan = builder.build()?;
//! let report = SyncExecutor::run(plan)?;
//! assert_eq!(report.operator("numbers").unwrap().feedback_in, 1);
//! # Ok::<(), dsms_engine::EngineError>(())
//! ```

use crate::error::{EngineError, EngineResult};
use crate::operator::{Operator, OperatorContext, SourceState};
use crate::page::Page;
use crate::plan::{NodeId, QueryPlan};
use dsms_feedback::{FeedbackPunctuation, FeedbackRoles, FeedbackSpec, FeedbackTrigger};
use dsms_punctuation::Punctuation;
use dsms_types::SchemaRef;
use std::cell::RefCell;
use std::rc::Rc;

/// One feedback subscription declared via [`Stream::with_feedback`]: its
/// human-readable description (for build-time errors) and whether it has been
/// lowered onto a consumer yet.
struct SubscriptionRecord {
    description: String,
    lowered: bool,
}

/// Shared construction state: the plan under construction plus subscription
/// accounting, so [`StreamBuilder::build`] can detect feedback declared on a
/// stream that was then dropped before any consumer attached (which would
/// otherwise be exactly the silent no-op `with_feedback` promises to rule
/// out) — and name the offending operator.
struct BuilderState {
    plan: QueryPlan,
    subscriptions: Vec<SubscriptionRecord>,
}

type SharedState = Rc<RefCell<BuilderState>>;

/// Entry point of the fluent composition API: owns the [`QueryPlan`] under
/// construction and hands out [`Stream`] handles.
///
/// # Examples
///
/// ```
/// use dsms_engine::StreamBuilder;
///
/// let builder = StreamBuilder::new().with_page_capacity(64).with_queue_capacity(8);
/// let plan = builder.build().unwrap(); // an empty plan is trivially valid
/// assert_eq!(plan.node_count(), 0);
/// assert_eq!(plan.page_capacity(), 64);
/// ```
pub struct StreamBuilder {
    state: SharedState,
}

impl Default for StreamBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamBuilder {
    /// Creates a builder over an empty plan with default capacities.
    pub fn new() -> Self {
        StreamBuilder {
            state: Rc::new(RefCell::new(BuilderState {
                plan: QueryPlan::new(),
                subscriptions: Vec::new(),
            })),
        }
    }

    /// Sets the tuples-per-page capacity used on every connection.
    pub fn with_page_capacity(self, capacity: usize) -> Self {
        {
            let mut state = self.state.borrow_mut();
            state.plan = std::mem::take(&mut state.plan).with_page_capacity(capacity);
        }
        self
    }

    /// Sets the pages-in-flight bound used on every connection (threaded
    /// executor back-pressure).
    pub fn with_queue_capacity(self, capacity: usize) -> Self {
        {
            let mut state = self.state.borrow_mut();
            state.plan = std::mem::take(&mut state.plan).with_queue_capacity(capacity);
        }
        self
    }

    /// Sets the worker-pool size the pooled executor should use for this
    /// plan (clamped to at least one; see [`QueryPlan::with_worker_pool`]).
    pub fn with_worker_pool(self, workers: usize) -> Self {
        {
            let mut state = self.state.borrow_mut();
            state.plan = std::mem::take(&mut state.plan).with_worker_pool(workers);
        }
        self
    }

    /// Sets the checkpoint interval, in punctuations consumed (sources:
    /// emitted), at which operators under a `Restart` recovery policy
    /// snapshot their state (see [`QueryPlan::with_checkpoint_interval`]).
    /// `0` disables epoch-triggered checkpoints (the retention backstop
    /// still forces one eventually).
    pub fn with_checkpoint_interval(self, interval: u64) -> Self {
        {
            let mut state = self.state.borrow_mut();
            state.plan = std::mem::take(&mut state.plan).with_checkpoint_interval(interval);
        }
        self
    }

    /// Adds a source operator (zero inputs) and returns the stream it
    /// produces on output port 0.
    ///
    /// The stream's schema comes from the operator's
    /// [`Operator::schema_out`] declaration; sources that cannot declare one
    /// (e.g. generators over arbitrary iterators) are added with
    /// [`source_as`](StreamBuilder::source_as).
    pub fn source(&self, operator: impl Operator + 'static) -> EngineResult<Stream> {
        let schema = operator.schema_out(0).ok_or_else(|| EngineError::InvalidPlan {
            detail: format!(
                "source `{}` does not declare its output schema; use source_as(op, schema) to \
                 state it explicitly",
                operator.name()
            ),
        })?;
        self.source_as(operator, schema)
    }

    /// Adds a source operator with an explicitly stated output schema.
    pub fn source_as(
        &self,
        operator: impl Operator + 'static,
        schema: SchemaRef,
    ) -> EngineResult<Stream> {
        if operator.inputs() != 0 {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "`{}` cannot be a source: it declares {} input(s)",
                    operator.name(),
                    operator.inputs()
                ),
            });
        }
        check_declared_output(&operator, &schema, "source_as")?;
        let node = self.state.borrow_mut().plan.add_boxed(Box::new(operator));
        Ok(Stream {
            state: self.state.clone(),
            node,
            port: 0,
            schema,
            pending_feedback: Vec::new(),
        })
    }

    /// Lowers the composition into a validated [`QueryPlan`].
    ///
    /// Fails if any [`Stream`] handle is still alive (an open stream is a
    /// composition mistake: either finish it with a sink or drop it
    /// deliberately to leave the output dangling), if a declared feedback
    /// subscription was never lowered (its stream was dropped before a
    /// consumer attached — the silent no-op `with_feedback` exists to rule
    /// out), or if [`QueryPlan::validate`] rejects the lowered plan
    /// (unconnected inputs, dangling partition outputs, cycles).
    pub fn build(self) -> EngineResult<QueryPlan> {
        let open = Rc::strong_count(&self.state) - 1;
        let state = Rc::try_unwrap(self.state)
            .map_err(|_| EngineError::InvalidPlan {
                detail: format!(
                    "cannot build: {open} stream handle(s) are still open — finish each stream \
                     with a sink or drop it explicitly"
                ),
            })?
            .into_inner();
        let undelivered: Vec<&str> = state
            .subscriptions
            .iter()
            .filter(|s| !s.lowered)
            .map(|s| s.description.as_str())
            .collect();
        if !undelivered.is_empty() {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "cannot build: {} declared feedback subscription(s) were never attached to a \
                     consumer — the stream carrying them was dropped before a sink or operator \
                     consumed it: {}",
                    undelivered.len(),
                    undelivered.join("; ")
                ),
            });
        }
        state.plan.validate()?;
        Ok(state.plan)
    }
}

/// A handle to one operator output edge under construction, carrying the
/// schema of the tuples that will flow on it.
///
/// Streams are consumed by composition: every combinator takes `self` by
/// value, because an output port feeds exactly one consumer.  Dropping a
/// stream leaves the output dangling (legal — emissions are discarded —
/// except for operators that [`Operator::must_connect_all_outputs`], which
/// [`StreamBuilder::build`] rejects with a descriptive error).
pub struct Stream {
    state: SharedState,
    node: NodeId,
    port: usize,
    schema: SchemaRef,
    /// Pending subscriptions: index of the builder-level record (marked
    /// lowered when a consumer attaches) plus the spec itself.
    pending_feedback: Vec<(usize, FeedbackSpec)>,
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream")
            .field("producer", &self.producer())
            .field("port", &self.port)
            .field("schema", &self.schema.describe())
            .field("pending_feedback", &self.pending_feedback.len())
            .finish()
    }
}

impl Stream {
    /// The schema of the data on this stream.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The producing node in the underlying plan (escape hatch for mixing
    /// fluent and raw-`QueryPlan` construction).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The producing node's output port.
    pub fn port(&self) -> usize {
        self.port
    }

    /// The producing operator's name.
    pub fn producer(&self) -> String {
        self.state.borrow().plan.node_name(self.node).unwrap_or("?").to_string()
    }

    /// The cumulative prefix fingerprint at this point of the stream, if the
    /// whole path from the plan's source up to (and including) the producing
    /// node is a dedupe-able chain — see [`QueryPlan::prefix_chain`].
    ///
    /// Two streams with equal prefix fingerprints were produced by identical
    /// `source → select → project` chains, so a multi-query manager can
    /// execute the chain once and fan its output out to both consumers.
    /// `None` means the path is not dedupe-able (an unfingerprinted or
    /// multi-port operator occurs on it).
    pub fn prefix_fingerprint(&self) -> Option<u64> {
        let state = self.state.borrow();
        for source in state.plan.source_nodes() {
            for (node, hash) in state.plan.prefix_chain(source) {
                if node == self.node {
                    return Some(hash);
                }
            }
        }
        None
    }

    /// Declares a feedback subscription on this stream: the consumer attached
    /// next will issue `spec` upstream (against the data flow) once the
    /// spec's trigger fires.
    ///
    /// Rejected at composition time when
    ///
    /// * the spec's pattern is over a different schema than the stream, or
    /// * the stream's producer declares **no feedback port**
    ///   ([`Operator::feedback_roles`] is `NONE`) — the punctuation would be
    ///   silently ignored at run time, which is never what a declared
    ///   subscription means.
    pub fn with_feedback(mut self, spec: FeedbackSpec) -> EngineResult<Stream> {
        let producer = self.producer();
        if spec.schema() != &self.schema {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "feedback subscription on `{producer}` rejected: the pattern is over schema \
                     {} but the stream carries {}",
                    spec.schema().describe(),
                    self.schema.describe()
                ),
            });
        }
        let roles = {
            let state = self.state.borrow();
            state.plan.nodes[self.node.0].operator.feedback_roles()
        };
        if !roles.accepts_feedback() {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "feedback subscription on `{producer}` rejected: the operator declares no \
                     feedback port (roles: {roles}), so the feedback would be silently ignored \
                     at run time"
                ),
            });
        }
        let record = {
            let mut state = self.state.borrow_mut();
            state.subscriptions.push(SubscriptionRecord {
                description: format!("{spec} on `{producer}`"),
                lowered: false,
            });
            state.subscriptions.len() - 1
        };
        self.pending_feedback.push((record, spec));
        Ok(self)
    }

    /// Pins this stream's producing operator to `worker` when the plan runs
    /// on the pooled executor (a placement hint, taken modulo the pool size;
    /// the other executors ignore it).  Useful for keeping a partition chain
    /// on one worker so its pages never cross a queue hand-off.
    pub fn pin_to_worker(self, worker: usize) -> Stream {
        self.state
            .borrow_mut()
            .plan
            .pin_to_worker(self.node, worker)
            .expect("a stream's node always exists in its own plan");
        self
    }

    /// Declares the recovery policy for this stream's producing operator.
    /// [`crate::RecoveryPolicy::Restart`] puts it under supervision:
    /// punctuation-epoch checkpoints, in-place restart with suffix replay on
    /// failure.  Validation (at run time) rejects `Restart` on an operator
    /// that is not [`Operator::restartable`].
    pub fn with_recovery(self, policy: crate::plan::RecoveryPolicy) -> Stream {
        self.state
            .borrow_mut()
            .plan
            .set_recovery(self.node, policy)
            .expect("a stream's node always exists in its own plan");
        self
    }

    /// Quarantine this stream's producing operator instead of failing the
    /// whole run when it exhausts its restart budget (or fails under
    /// [`crate::RecoveryPolicy::FailFast`]): its stream is tombstoned —
    /// flushed, end-of-stream'd, and detached — while the rest of the plan
    /// keeps running.  The failure is reported on the operator's metrics and
    /// in [`crate::RecoverySummary::quarantined`].
    pub fn quarantine_on_failure(self) -> Stream {
        self.state
            .borrow_mut()
            .plan
            .set_quarantine(self.node, true)
            .expect("a stream's node always exists in its own plan");
        self
    }

    /// Sugar for [`with_feedback`](Stream::with_feedback): issue `feedback`
    /// once the consumer attached next has seen `after_tuples` tuples.
    pub fn emit_feedback(
        self,
        intent: dsms_feedback::FeedbackIntent,
        pattern: dsms_punctuation::Pattern,
        after_tuples: u64,
    ) -> EngineResult<Stream> {
        self.with_feedback(FeedbackSpec::new(intent, pattern).after_tuples(after_tuples))
    }

    /// Connects this stream into a one-input operator, returning the stream
    /// on its output port 0 with the schema the operator declares.
    ///
    /// Use [`apply_as`](Stream::apply_as) for operators that cannot declare
    /// their output schema.
    pub fn apply(self, operator: impl Operator + 'static) -> EngineResult<Stream> {
        let schema = operator.schema_out(0).ok_or_else(|| EngineError::InvalidPlan {
            detail: format!(
                "`{}` does not declare its output schema; use apply_as(op, schema) to state it \
                 explicitly",
                operator.name()
            ),
        })?;
        self.apply_as(operator, schema)
    }

    /// Connects this stream into a one-input operator whose output schema is
    /// stated explicitly (checked against the operator's declaration when it
    /// has one).  Multi-output operators are rejected — use
    /// [`apply_multi`](Stream::apply_multi), which hands back every output
    /// stream instead of silently discarding ports 1 and up.
    pub fn apply_as(
        self,
        operator: impl Operator + 'static,
        output_schema: SchemaRef,
    ) -> EngineResult<Stream> {
        check_single_output(&operator, "apply")?;
        check_declared_output(&operator, &output_schema, "apply_as")?;
        let (state, node) = attach(vec![self], Box::new(operator), AttachKind::Through)?;
        Ok(Stream { state, node, port: 0, schema: output_schema, pending_feedback: Vec::new() })
    }

    /// Connects this stream into a one-input, multi-output operator,
    /// returning one stream per output port.  Every output port must declare
    /// its schema.
    pub fn apply_multi(self, operator: impl Operator + 'static) -> EngineResult<Vec<Stream>> {
        let outputs = operator.outputs();
        let mut schemas = Vec::with_capacity(outputs);
        for output in 0..outputs {
            schemas.push(operator.schema_out(output).ok_or_else(|| EngineError::InvalidPlan {
                detail: format!(
                    "`{}` does not declare a schema for output {output}; multi-output \
                         operators need full schema declarations to be used fluently",
                    operator.name()
                ),
            })?);
        }
        let (state, node) = attach(vec![self], Box::new(operator), AttachKind::Through)?;
        Ok(schemas
            .into_iter()
            .enumerate()
            .map(|(port, schema)| Stream {
                state: state.clone(),
                node,
                port,
                schema,
                pending_feedback: Vec::new(),
            })
            .collect())
    }

    /// Merges several streams into one multi-input operator (input port `i`
    /// is fed by `inputs[i]`), returning the stream on its output port 0 with
    /// the schema the operator declares.
    pub fn merge(inputs: Vec<Stream>, operator: impl Operator + 'static) -> EngineResult<Stream> {
        let schema = operator.schema_out(0).ok_or_else(|| EngineError::InvalidPlan {
            detail: format!(
                "`{}` does not declare its output schema; use merge_as(inputs, op, schema) to \
                 state it explicitly",
                operator.name()
            ),
        })?;
        Self::merge_as(inputs, operator, schema)
    }

    /// [`merge`](Stream::merge) with an explicitly stated output schema.
    /// Like [`apply_as`](Stream::apply_as), multi-output operators are
    /// rejected rather than having their extra ports silently discarded.
    pub fn merge_as(
        inputs: Vec<Stream>,
        operator: impl Operator + 'static,
        output_schema: SchemaRef,
    ) -> EngineResult<Stream> {
        check_single_output(&operator, "merge")?;
        check_declared_output(&operator, &output_schema, "merge_as")?;
        let (state, node) = attach(inputs, Box::new(operator), AttachKind::Through)?;
        Ok(Stream { state, node, port: 0, schema: output_schema, pending_feedback: Vec::new() })
    }

    /// Merges this stream with one other into a two-input operator (this
    /// stream feeds input 0, `other` feeds input 1).
    pub fn combine(self, other: Stream, operator: impl Operator + 'static) -> EngineResult<Stream> {
        Self::merge(vec![self, other], operator)
    }

    /// [`combine`](Stream::combine) with an explicitly stated output schema.
    pub fn combine_as(
        self,
        other: Stream,
        operator: impl Operator + 'static,
        output_schema: SchemaRef,
    ) -> EngineResult<Stream> {
        Self::merge_as(vec![self, other], operator, output_schema)
    }

    /// Terminates this stream in a one-input operator (typically a sink with
    /// zero outputs; any unconnected outputs discard their emissions).
    /// Returns the sink's node id for metrics lookups.
    pub fn sink(self, operator: impl Operator + 'static) -> EngineResult<NodeId> {
        let (_, node) = attach(vec![self], Box::new(operator), AttachKind::Sink)?;
        Ok(node)
    }
}

/// Rejects a multi-output operator on a single-stream combinator: returning
/// only port 0 would silently discard the other outputs' data (`method`
/// names the caller; the fix is `apply_multi`).
fn check_single_output(operator: &(impl Operator + ?Sized), method: &str) -> EngineResult<()> {
    if operator.outputs() > 1 {
        return Err(EngineError::InvalidPlan {
            detail: format!(
                "`{}` has {} output ports but {method} connects only port 0 — use apply_multi to \
                 receive every output stream",
                operator.name(),
                operator.outputs()
            ),
        });
    }
    Ok(())
}

/// Rejects an explicitly stated output schema that contradicts the
/// operator's own `schema_out(0)` declaration (shared by `source_as`,
/// `apply_as` and `merge_as`; `method` names the caller in the error).
fn check_declared_output(
    operator: &(impl Operator + ?Sized),
    given: &SchemaRef,
    method: &str,
) -> EngineResult<()> {
    if let Some(declared) = operator.schema_out(0) {
        if &declared != given {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "`{}` declares output schema {} but {method} was given {}",
                    operator.name(),
                    declared.describe(),
                    given.describe()
                ),
            });
        }
    }
    Ok(())
}

/// Whether an attachment continues the dataflow or terminates it (the only
/// difference is the wording of arity errors).
#[derive(Clone, Copy, PartialEq, Eq)]
enum AttachKind {
    Through,
    Sink,
}

/// Shared lowering for every attachment: checks arity and per-edge schemas,
/// wraps the consumer in a [`FeedbackSubscriber`] when subscriptions are
/// pending, adds the node and draws the edges.
fn attach(
    inputs: Vec<Stream>,
    operator: Box<dyn Operator>,
    kind: AttachKind,
) -> EngineResult<(SharedState, NodeId)> {
    let state =
        inputs.first().map(|s| s.state.clone()).ok_or_else(|| EngineError::InvalidPlan {
            detail: format!("`{}` was merged from an empty stream list", operator.name()),
        })?;
    for stream in &inputs {
        if !Rc::ptr_eq(&state, &stream.state) {
            return Err(EngineError::InvalidPlan {
                detail: format!(
                    "cannot combine streams from different builders (while connecting `{}`)",
                    operator.name()
                ),
            });
        }
    }
    if operator.inputs() != inputs.len() {
        let verb = match kind {
            AttachKind::Through => "consume",
            AttachKind::Sink => "sink",
        };
        return Err(EngineError::InvalidPlan {
            detail: format!(
                "`{}` has {} input(s) and cannot {verb} {} stream(s)",
                operator.name(),
                operator.inputs(),
                inputs.len()
            ),
        });
    }
    for (port, stream) in inputs.iter().enumerate() {
        if let Some(expected) = operator.schema_in(port) {
            if expected != stream.schema {
                return Err(EngineError::InvalidPlan {
                    detail: format!(
                        "cannot connect `{}` to input {port} of `{}`: schema mismatch — `{}` \
                         produces {} but `{}` expects {}",
                        stream.producer(),
                        operator.name(),
                        stream.producer(),
                        stream.schema.describe(),
                        operator.name(),
                        expected.describe()
                    ),
                });
            }
        }
    }

    // Lower pending feedback subscriptions into a wrapper that counts
    // arrivals per input port and fires the declared punctuation upstream.
    let mut subscriptions = Vec::new();
    let mut lowered_records = Vec::new();
    for (port, stream) in inputs.iter().enumerate() {
        for (record, spec) in &stream.pending_feedback {
            lowered_records.push(*record);
            subscriptions.push(Subscription { port, spec: spec.clone(), fired: false });
        }
    }
    let operator: Box<dyn Operator> = if subscriptions.is_empty() {
        operator
    } else {
        let ports = operator.inputs();
        Box::new(FeedbackSubscriber { inner: operator, seen: vec![0; ports], subscriptions })
    };

    let mut state_mut = state.borrow_mut();
    for record in lowered_records {
        state_mut.subscriptions[record].lowered = true;
    }
    let node = state_mut.plan.add_boxed(operator);
    for (port, stream) in inputs.iter().enumerate() {
        state_mut.plan.connect(stream.node, stream.port, node, port)?;
    }
    drop(state_mut);
    Ok((state, node))
}

/// One pending feedback subscription lowered onto a consumer input port.
struct Subscription {
    port: usize,
    spec: FeedbackSpec,
    fired: bool,
}

/// Transparent wrapper realizing composition-time feedback subscriptions: it
/// delegates every callback to the wrapped operator (keeping its name, so
/// metrics are unaffected) while counting tuple arrivals per input port and
/// sending each subscribed [`FeedbackSpec`] upstream once its trigger fires.
struct FeedbackSubscriber {
    inner: Box<dyn Operator>,
    seen: Vec<u64>,
    subscriptions: Vec<Subscription>,
}

impl FeedbackSubscriber {
    fn fire_due(&mut self, at_flush: bool, ctx: &mut OperatorContext) {
        let seen = &self.seen;
        let inner = &self.inner;
        for sub in &mut self.subscriptions {
            if sub.fired {
                continue;
            }
            let due = match sub.spec.trigger() {
                FeedbackTrigger::AfterTuples(n) => seen[sub.port] >= n,
                FeedbackTrigger::AtFlush => at_flush,
            };
            if due {
                sub.fired = true;
                ctx.send_feedback(sub.port, sub.spec.to_punctuation(inner.name()));
            }
        }
    }
}

impl Operator for FeedbackSubscriber {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn inputs(&self) -> usize {
        self.inner.inputs()
    }

    fn outputs(&self) -> usize {
        self.inner.outputs()
    }

    fn must_connect_all_outputs(&self) -> bool {
        self.inner.must_connect_all_outputs()
    }

    fn feedback_roles(&self) -> FeedbackRoles {
        self.inner.feedback_roles().union(FeedbackRoles::producer())
    }

    fn schema_in(&self, input: usize) -> Option<SchemaRef> {
        self.inner.schema_in(input)
    }

    fn schema_out(&self, output: usize) -> Option<SchemaRef> {
        self.inner.schema_out(output)
    }

    fn on_tuple(
        &mut self,
        input: usize,
        tuple: dsms_types::Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.seen[input] += 1;
        self.inner.on_tuple(input, tuple, ctx)?;
        self.fire_due(false, ctx);
        Ok(())
    }

    fn on_page(&mut self, input: usize, page: Page, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.seen[input] += page.tuple_count() as u64;
        self.inner.on_page(input, page, ctx)?;
        self.fire_due(false, ctx);
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        input: usize,
        punctuation: Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_punctuation(input, punctuation, ctx)
    }

    fn on_feedback(
        &mut self,
        output: usize,
        feedback: FeedbackPunctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.inner.on_feedback(output, feedback, ctx)
    }

    fn on_request_results(&mut self, output: usize, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_request_results(output, ctx)
    }

    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.inner.on_flush(ctx)?;
        self.fire_due(true, ctx);
        Ok(())
    }

    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        self.inner.poll_source(ctx)
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        self.inner.feedback_stats()
    }

    fn export_state(&mut self) -> Vec<crate::operator::StateEntry> {
        self.inner.export_state()
    }

    fn import_state(&mut self, entries: Vec<crate::operator::StateEntry>) -> EngineResult<()> {
        self.inner.import_state(entries)
    }

    fn elastic_stats(&self) -> Option<crate::metrics::ElasticStats> {
        self.inner.elastic_stats()
    }

    // The wrapper's own obligations (`seen` counters, un-fired
    // subscriptions) are not checkpointed and a replay would re-fire
    // feedback the upstream operator already consumed, so a subscribing
    // wrapper is never restartable.  (With no subscriptions the wrapper is
    // not even constructed, so the expression below is belt-and-braces.)
    fn restartable(&self) -> bool {
        self.subscriptions.is_empty() && self.inner.restartable()
    }

    fn checkpoint(&self) -> EngineResult<Vec<crate::operator::StateEntry>> {
        self.inner.checkpoint()
    }

    fn restore(&mut self, entries: Vec<crate::operator::StateEntry>) -> EngineResult<()> {
        self.inner.restore(entries)
    }

    fn absorb_shutdown(&mut self, output: usize, ctx: &mut OperatorContext) -> bool {
        self.inner.absorb_shutdown(output, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{SyncExecutor, ThreadedExecutor};
    use crate::operator::StreamItem;
    use dsms_feedback::FeedbackIntent;
    use dsms_punctuation::{Pattern, PatternItem};
    use dsms_types::{DataType, Schema, Timestamp, Tuple, Value};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Schema::shared(&[("ts", DataType::Timestamp), ("v", DataType::Int)])
    }

    fn other_schema() -> SchemaRef {
        Schema::shared(&[("ts", DataType::Timestamp), ("w", DataType::Float)])
    }

    fn tuple(i: i64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i)])
    }

    /// Source over a fixed vector, declaring schema and the exploiter role.
    struct TestSource {
        tuples: Vec<Tuple>,
        next: usize,
        suppressed: Arc<Mutex<Vec<FeedbackPunctuation>>>,
    }

    impl TestSource {
        fn new(n: i64) -> Self {
            TestSource {
                tuples: (0..n).map(tuple).collect(),
                next: 0,
                suppressed: Arc::new(Mutex::new(Vec::new())),
            }
        }
    }

    impl Operator for TestSource {
        fn name(&self) -> &str {
            "test-source"
        }
        fn inputs(&self) -> usize {
            0
        }
        fn feedback_roles(&self) -> FeedbackRoles {
            FeedbackRoles::exploiter()
        }
        fn schema_out(&self, _: usize) -> Option<SchemaRef> {
            Some(schema())
        }
        fn on_tuple(&mut self, _: usize, _: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
            Ok(())
        }
        fn on_feedback(
            &mut self,
            _: usize,
            feedback: FeedbackPunctuation,
            _: &mut OperatorContext,
        ) -> EngineResult<()> {
            self.suppressed.lock().push(feedback);
            Ok(())
        }
        fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
            match self.tuples.get(self.next) {
                Some(t) => {
                    ctx.emit(0, t.clone());
                    self.next += 1;
                    Ok(SourceState::Producing)
                }
                None => Ok(SourceState::Exhausted),
            }
        }
    }

    /// Pass-through declaring schemas on both sides; no feedback port.
    struct UnawarePass;
    impl Operator for UnawarePass {
        fn name(&self) -> &str {
            "unaware-pass"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn schema_in(&self, _: usize) -> Option<SchemaRef> {
            Some(schema())
        }
        fn schema_out(&self, _: usize) -> Option<SchemaRef> {
            Some(schema())
        }
        fn on_tuple(&mut self, _: usize, t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
            ctx.emit(0, t);
            Ok(())
        }
    }

    /// Sink collecting tuples, declaring its expected input schema.
    struct TestSink {
        expects: SchemaRef,
        seen: Arc<Mutex<Vec<Tuple>>>,
    }

    impl TestSink {
        fn new(expects: SchemaRef) -> (Self, Arc<Mutex<Vec<Tuple>>>) {
            let seen = Arc::new(Mutex::new(Vec::new()));
            (TestSink { expects, seen: seen.clone() }, seen)
        }
    }

    impl Operator for TestSink {
        fn name(&self) -> &str {
            "test-sink"
        }
        fn inputs(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            0
        }
        fn schema_in(&self, _: usize) -> Option<SchemaRef> {
            Some(self.expects.clone())
        }
        fn on_tuple(&mut self, _: usize, t: Tuple, _: &mut OperatorContext) -> EngineResult<()> {
            self.seen.lock().push(t);
            Ok(())
        }
    }

    #[test]
    fn fluent_pipeline_lowers_and_runs_on_both_executors() {
        for threaded in [false, true] {
            let builder = StreamBuilder::new().with_page_capacity(4).with_queue_capacity(4);
            let (sink, seen) = TestSink::new(schema());
            builder
                .source(TestSource::new(20))
                .unwrap()
                .apply(UnawarePass)
                .unwrap()
                .sink(sink)
                .unwrap();
            let plan = builder.build().unwrap();
            assert_eq!(plan.node_count(), 3);
            assert_eq!(plan.edge_count(), 2);
            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            assert_eq!(seen.lock().len(), 20, "threaded={threaded}");
            assert_eq!(report.operator("unaware-pass").unwrap().tuples_in, 20);
        }
    }

    #[test]
    fn worker_pool_and_pins_flow_through_to_the_pooled_executor() {
        let builder = StreamBuilder::new().with_page_capacity(4).with_worker_pool(2);
        let (sink, seen) = TestSink::new(schema());
        builder
            .source(TestSource::new(20))
            .unwrap()
            .pin_to_worker(1)
            .apply(UnawarePass)
            .unwrap()
            .pin_to_worker(1)
            .sink(sink)
            .unwrap();
        let plan = builder.build().unwrap();
        assert_eq!(plan.worker_pool(), Some(2));
        assert_eq!(plan.worker_pin(crate::NodeId(0)), Some(1));
        assert_eq!(plan.worker_pin(crate::NodeId(1)), Some(1));
        let report = crate::PooledExecutor::run(plan).unwrap();
        assert_eq!(seen.lock().len(), 20);
        assert_eq!(report.scheduler.unwrap().workers, 2);
    }

    #[test]
    fn schema_mismatch_is_rejected_when_the_edge_is_drawn() {
        let builder = StreamBuilder::new();
        let (sink, _) = TestSink::new(other_schema());
        let err = builder.source(TestSource::new(5)).unwrap().sink(sink).unwrap_err().to_string();
        assert_eq!(
            err,
            "invalid plan: cannot connect `test-source` to input 0 of `test-sink`: schema \
             mismatch — `test-source` produces (ts: timestamp, v: int) but `test-sink` expects \
             (ts: timestamp, w: float)"
        );
    }

    #[test]
    fn arity_mismatches_are_rejected() {
        let builder = StreamBuilder::new();
        let err = builder.source(UnawarePass).unwrap_err().to_string();
        assert_eq!(err, "invalid plan: `unaware-pass` cannot be a source: it declares 1 input(s)");

        let err = Stream::merge(Vec::new(), UnawarePass).unwrap_err().to_string();
        assert!(err.contains("empty stream list"), "{err}");

        let a = builder.source(TestSource::new(1)).unwrap();
        let b = builder.source(TestSource::new(1)).unwrap();
        let err = Stream::merge(vec![a, b], UnawarePass).unwrap_err().to_string();
        assert_eq!(
            err,
            "invalid plan: `unaware-pass` has 1 input(s) and cannot consume 2 stream(s)"
        );
    }

    #[test]
    fn cross_builder_streams_are_rejected() {
        let a = StreamBuilder::new().source(TestSource::new(1)).unwrap();
        let b = StreamBuilder::new().source(TestSource::new(1)).unwrap();
        let err = Stream::merge(vec![a, b], UnawarePass).unwrap_err().to_string();
        assert!(err.contains("different builders"), "{err}");
    }

    #[test]
    fn subscription_on_unaware_producer_is_rejected() {
        let builder = StreamBuilder::new();
        let spec = FeedbackSpec::assumed(Pattern::all_wildcards(schema()));
        let err = builder
            .source(TestSource::new(5))
            .unwrap()
            .apply(UnawarePass)
            .unwrap()
            .with_feedback(spec)
            .unwrap_err()
            .to_string();
        assert_eq!(
            err,
            "invalid plan: feedback subscription on `unaware-pass` rejected: the operator \
             declares no feedback port (roles: none), so the feedback would be silently ignored \
             at run time"
        );
    }

    #[test]
    fn subscription_with_wrong_schema_is_rejected() {
        let builder = StreamBuilder::new();
        let spec = FeedbackSpec::assumed(Pattern::all_wildcards(other_schema()));
        let err = builder
            .source(TestSource::new(5))
            .unwrap()
            .with_feedback(spec)
            .unwrap_err()
            .to_string();
        assert_eq!(
            err,
            "invalid plan: feedback subscription on `test-source` rejected: the pattern is over \
             schema (ts: timestamp, w: float) but the stream carries (ts: timestamp, v: int)"
        );
    }

    #[test]
    fn subscriptions_fire_after_the_declared_tuple_count_on_both_executors() {
        for threaded in [false, true] {
            let builder = StreamBuilder::new().with_page_capacity(4).with_queue_capacity(4);
            let source = TestSource::new(40);
            let suppressed = source.suppressed.clone();
            let pattern =
                Pattern::for_attributes(schema(), &[("v", PatternItem::Eq(Value::Int(3)))])
                    .unwrap();
            let (sink, _) = TestSink::new(schema());
            builder
                .source(source)
                .unwrap()
                .with_feedback(FeedbackSpec::assumed(pattern.clone()).after_tuples(10))
                .unwrap()
                .sink(sink)
                .unwrap();
            let plan = builder.build().unwrap();
            let report = if threaded {
                ThreadedExecutor::run(plan).unwrap()
            } else {
                SyncExecutor::run(plan).unwrap()
            };
            let received = suppressed.lock();
            assert_eq!(received.len(), 1, "threaded={threaded}");
            assert_eq!(received[0].intent(), FeedbackIntent::Assumed);
            assert_eq!(received[0].pattern(), &pattern);
            assert_eq!(received[0].issuer(), "test-sink", "default issuer is the subscriber");
            assert_eq!(report.operator("test-sink").unwrap().feedback_out, 1);
            assert_eq!(report.total_feedback_dropped(), 0);
        }
    }

    #[test]
    fn emit_feedback_sugar_lowers_like_with_feedback() {
        let builder = StreamBuilder::new().with_page_capacity(4);
        let source = TestSource::new(20);
        let received = source.suppressed.clone();
        let pattern =
            Pattern::for_attributes(schema(), &[("v", PatternItem::Eq(Value::Int(7)))]).unwrap();
        let (sink, _) = TestSink::new(schema());
        builder
            .source(source)
            .unwrap()
            .emit_feedback(FeedbackIntent::Desired, pattern.clone(), 5)
            .unwrap()
            .sink(sink)
            .unwrap();
        let report = SyncExecutor::run(builder.build().unwrap()).unwrap();
        let received = received.lock();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].intent(), FeedbackIntent::Desired, "intent passed through");
        assert_eq!(received[0].pattern(), &pattern, "pattern passed through");
        assert_eq!(report.operator("test-sink").unwrap().feedback_out, 1);
    }

    #[test]
    fn at_flush_subscriptions_fire_during_flush() {
        let builder = StreamBuilder::new().with_page_capacity(4);
        let source = TestSource::new(5);
        let suppressed = source.suppressed.clone();
        let (sink, _) = TestSink::new(schema());
        builder
            .source(source)
            .unwrap()
            .with_feedback(
                FeedbackSpec::desired(Pattern::all_wildcards(schema()))
                    .at_flush()
                    .from_issuer("operator-console"),
            )
            .unwrap()
            .sink(sink)
            .unwrap();
        let report = SyncExecutor::run(builder.build().unwrap()).unwrap();
        let received = suppressed.lock();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].intent(), FeedbackIntent::Desired);
        assert_eq!(received[0].issuer(), "operator-console", "explicit issuer override");
        assert_eq!(report.total_feedback_dropped(), 0);
    }

    #[test]
    fn open_streams_block_build() {
        let builder = StreamBuilder::new();
        let stream = builder.source(TestSource::new(1)).unwrap();
        let err = builder.build().unwrap_err().to_string();
        assert_eq!(
            err,
            "invalid plan: cannot build: 1 stream handle(s) are still open — finish each stream \
             with a sink or drop it explicitly"
        );
        drop(stream);
    }

    #[test]
    fn dropped_stream_with_pending_subscription_blocks_build() {
        let builder = StreamBuilder::new();
        let stream = builder
            .source(TestSource::new(5))
            .unwrap()
            .with_feedback(FeedbackSpec::assumed(Pattern::all_wildcards(schema())))
            .unwrap();
        // Dropping a plain stream is legal; dropping one that carries a
        // declared feedback contract must not silently discard the contract.
        drop(stream);
        let err = builder.build().unwrap_err().to_string();
        assert!(
            err.starts_with(
                "invalid plan: cannot build: 1 declared feedback subscription(s) were never \
                 attached to a consumer"
            ),
            "{err}"
        );
        assert!(err.contains("on `test-source`"), "must name the producer: {err}");
        assert!(err.contains('¬'), "must describe the subscription: {err}");
    }

    #[test]
    fn build_validates_the_lowered_plan() {
        // A deliberately dropped stream leaves a dangling output — legal for
        // ordinary operators, so build succeeds and the plan validates.
        let builder = StreamBuilder::new();
        let stream = builder.source(TestSource::new(1)).unwrap();
        drop(stream);
        let plan = builder.build().unwrap();
        assert_eq!(plan.node_count(), 1);
        assert_eq!(plan.edge_count(), 0);
    }

    #[test]
    fn apply_rejects_multi_output_operators() {
        /// Two-output splitter with full schema declarations.
        struct TwoWay;
        impl Operator for TwoWay {
            fn name(&self) -> &str {
                "two-way"
            }
            fn inputs(&self) -> usize {
                1
            }
            fn outputs(&self) -> usize {
                2
            }
            fn schema_out(&self, _: usize) -> Option<SchemaRef> {
                Some(schema())
            }
            fn on_tuple(
                &mut self,
                _: usize,
                t: Tuple,
                ctx: &mut OperatorContext,
            ) -> EngineResult<()> {
                ctx.emit(0, t);
                Ok(())
            }
        }
        let builder = StreamBuilder::new();
        let err =
            builder.source(TestSource::new(1)).unwrap().apply(TwoWay).unwrap_err().to_string();
        assert_eq!(
            err,
            "invalid plan: `two-way` has 2 output ports but apply connects only port 0 — use \
             apply_multi to receive every output stream"
        );
    }

    #[test]
    fn apply_multi_requires_declared_output_schemas() {
        /// Two-output splitter that declares only output 0's schema.
        struct HalfDeclared;
        impl Operator for HalfDeclared {
            fn name(&self) -> &str {
                "half-declared"
            }
            fn inputs(&self) -> usize {
                1
            }
            fn outputs(&self) -> usize {
                2
            }
            fn schema_out(&self, output: usize) -> Option<SchemaRef> {
                (output == 0).then(schema)
            }
            fn on_tuple(
                &mut self,
                _: usize,
                t: Tuple,
                ctx: &mut OperatorContext,
            ) -> EngineResult<()> {
                ctx.emit(0, t);
                Ok(())
            }
        }
        let builder = StreamBuilder::new();
        let err = builder
            .source(TestSource::new(1))
            .unwrap()
            .apply_multi(HalfDeclared)
            .unwrap_err()
            .to_string();
        assert!(err.contains("does not declare a schema for output 1"), "{err}");
    }

    #[test]
    fn subscriber_wrapper_counts_per_item_dispatch_too() {
        // Drive the wrapper through on_tuple directly (the executors use
        // on_page; unit-level callers may not).
        let (sink, _) = TestSink::new(schema());
        let spec = FeedbackSpec::assumed(Pattern::all_wildcards(schema())).after_tuples(2);
        let mut wrapper = FeedbackSubscriber {
            inner: Box::new(sink),
            seen: vec![0],
            subscriptions: vec![Subscription { port: 0, spec, fired: false }],
        };
        let mut ctx = OperatorContext::new();
        wrapper.on_tuple(0, tuple(0), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "not due yet");
        wrapper.on_tuple(0, tuple(1), &mut ctx).unwrap();
        let fired = ctx.take_feedback();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 0, "fires on the subscribed input port");
        wrapper.on_tuple(0, tuple(2), &mut ctx).unwrap();
        assert!(ctx.take_feedback().is_empty(), "fires exactly once");

        // Page dispatch counts tuples (not punctuation) and preserves the
        // inner operator's identity.
        assert_eq!(wrapper.name(), "test-sink");
        assert!(wrapper.feedback_roles().produces());
        let page = Page::from_items(vec![
            StreamItem::Tuple(tuple(3)),
            StreamItem::Punctuation(
                Punctuation::progress(schema(), "ts", Timestamp::EPOCH).unwrap(),
            ),
        ]);
        wrapper.on_page(0, page, &mut ctx).unwrap();
        assert_eq!(wrapper.seen[0], 4, "3 tuples via on_tuple + 1 via on_page");
    }
}
