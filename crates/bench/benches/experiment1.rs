//! Criterion bench for Experiment 1 (Figures 5 and 6), scaled down so a run
//! completes in CI time.  The measured quantity is end-to-end execution of the
//! imputation plan with and without PACE + feedback; the figure-shaped series
//! are produced by the `figure5_6` binary instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsms_bench::{run_experiment1, Experiment1Config};
use dsms_workloads::ImputationConfig;
use std::time::Duration;

fn bench_config() -> Experiment1Config {
    Experiment1Config {
        stream: ImputationConfig { tuples: 300, ..ImputationConfig::experiment1() },
        speedup: 40.0,
        lookup_cost: Duration::from_micros(2_800),
        ..Experiment1Config::small()
    }
}

fn experiment1(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("experiment1_imputation_plan");
    group.sample_size(10);
    for (label, feedback) in [("no_feedback", false), ("pace_feedback", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &feedback, |b, &feedback| {
            b.iter(|| run_experiment1(&config, feedback).expect("run failed"));
        });
    }
    group.finish();
}

criterion_group!(benches, experiment1);
criterion_main!(benches);
