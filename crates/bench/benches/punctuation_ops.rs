//! Micro-benchmarks of the punctuation substrate: pattern matching,
//! subsumption and registry guard checks — the per-tuple costs that feedback
//! adds to every operator, and therefore the "no discernible overhead"
//! claim's microscopic counterpart.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dsms_feedback::{FeedbackPunctuation, FeedbackRegistry};
use dsms_punctuation::{Pattern, PatternItem, Punctuation};
use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Tuple, Value};
use std::hint::black_box;

fn schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("speed", DataType::Float),
    ])
}

fn tuple(seg: i64) -> Tuple {
    Tuple::new(
        schema(),
        vec![Value::Timestamp(Timestamp::from_secs(seg)), Value::Int(seg), Value::Float(50.0)],
    )
}

fn punctuation_ops(c: &mut Criterion) {
    let pattern = Pattern::for_attributes(
        schema(),
        &[
            ("segment", PatternItem::InSet((0..6).map(Value::Int).collect())),
            ("timestamp", PatternItem::Le(Value::Timestamp(Timestamp::from_secs(1_000)))),
        ],
    )
    .unwrap();
    let tuples: Vec<Tuple> = (0..1_000).map(tuple).collect();

    c.bench_function("pattern_match_1000_tuples", |b| {
        b.iter(|| tuples.iter().filter(|t| pattern.matches(black_box(t))).count())
    });

    let wide = Pattern::for_attributes(
        schema(),
        &[("timestamp", PatternItem::Le(Value::Timestamp(Timestamp::from_secs(2_000))))],
    )
    .unwrap();
    c.bench_function("pattern_subsumption", |b| {
        b.iter(|| black_box(&wide).subsumes(black_box(&pattern)))
    });

    c.bench_function("registry_guard_decision_1000_tuples", |b| {
        b.iter_batched(
            || {
                let mut reg = FeedbackRegistry::new("bench");
                reg.register(FeedbackPunctuation::assumed(pattern.clone(), "bench")).unwrap();
                reg
            },
            |mut reg| {
                tuples
                    .iter()
                    .map(|t| reg.decide(t))
                    .filter(|d| *d == dsms_feedback::GuardDecision::Suppress)
                    .count()
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("progress_punctuation_construction", |b| {
        b.iter(|| {
            Punctuation::progress(schema(), "timestamp", Timestamp::from_secs(black_box(500)))
                .unwrap()
        })
    });
}

criterion_group!(benches, punctuation_ops);
criterion_main!(benches);
