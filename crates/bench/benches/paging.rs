//! Ablation: page size vs. execution time.
//!
//! NiagaraST batches tuples into pages to limit context switching between
//! operator threads (Section 5); punctuation flushes partial pages so slow
//! streams are not starved.  This bench sweeps the page capacity of a simple
//! pipelined plan under the threaded executor to show the batching trade-off
//! the paper's engine design relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsms_engine::{StreamBuilder, ThreadedExecutor};
use dsms_operators::{StreamOps, TuplePredicate, VecSource};
use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};

fn schema() -> SchemaRef {
    Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
}

fn stream(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i)])
        })
        .collect()
}

fn run_with_page_capacity(tuples: &[Tuple], page_capacity: usize) {
    let builder = StreamBuilder::new().with_page_capacity(page_capacity);
    builder
        .source(
            VecSource::new("source", tuples.to_vec())
                .with_punctuation("timestamp", StreamDuration::from_secs(100))
                .with_batch_size(page_capacity.max(8)),
        )
        .unwrap()
        .select("filter", TuplePredicate::new("v % 2 == 0", |t| t.int("v").unwrap_or(0) % 2 == 0))
        .unwrap()
        .sink_collect("sink")
        .unwrap();
    ThreadedExecutor::run(builder.build().unwrap()).expect("run failed");
}

fn paging(c: &mut Criterion) {
    let tuples = stream(20_000);
    let mut group = c.benchmark_group("page_capacity_sweep");
    group.sample_size(10);
    for capacity in [1usize, 8, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &capacity, |b, &capacity| {
            b.iter(|| run_with_page_capacity(&tuples, capacity));
        });
    }
    group.finish();
}

criterion_group!(benches, paging);
criterion_main!(benches);
