//! Ablation for the paper's "no discernible overhead as the frequency of
//! feedback increases" observation: the speed-map plan under scheme F2 with
//! viewport changes every 1, 2, 4 and 6 minutes, plus the feedback-free
//! baseline, on the same (scaled-down) stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsms_bench::experiments::Scheme;
use dsms_bench::plans::speedmap_plan;
use dsms_bench::Experiment2Config;
use dsms_engine::ThreadedExecutor;
use dsms_types::StreamDuration;
use dsms_workloads::TrafficConfig;

fn bench_config() -> Experiment2Config {
    Experiment2Config {
        stream: TrafficConfig {
            duration: StreamDuration::from_minutes(20),
            detectors_per_segment: 4,
            ..TrafficConfig::default()
        },
        ..Experiment2Config::small()
    }
}

fn feedback_overhead(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("feedback_frequency_overhead");
    group.sample_size(10);

    group.bench_function("baseline_F0", |b| {
        b.iter(|| {
            let (plan, _h) =
                speedmap_plan(&config, Scheme::F0, StreamDuration::from_minutes(2)).unwrap();
            ThreadedExecutor::run(plan).expect("run failed")
        })
    });
    for minutes in [1i64, 2, 4, 6] {
        group.bench_with_input(
            BenchmarkId::new("F2_every_minutes", minutes),
            &minutes,
            |b, &minutes| {
                b.iter(|| {
                    let (plan, _h) =
                        speedmap_plan(&config, Scheme::F2, StreamDuration::from_minutes(minutes))
                            .unwrap();
                    ThreadedExecutor::run(plan).expect("run failed")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, feedback_overhead);
criterion_main!(benches);
