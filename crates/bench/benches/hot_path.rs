//! End-to-end throughput of the tuple/punctuation hot path.
//!
//! The paper's premise is that feedback punctuation is cheap enough to live
//! *inside* the data path: guards filter every tuple at the source and
//! shuffles re-hash every tuple.  This bench measures the per-tuple constant
//! factor of exactly those paths, on the traffic workload extended with a
//! text attribute (so tuple copies are not accidentally free), under both
//! executors:
//!
//! * **fanout4** — source → DUPLICATE×4 → four null sinks.  Stresses tuple
//!   sharing: every input tuple is handed to four consumers.
//! * **guarded_source** — a source carrying eight active (never-matching)
//!   assumed guards → null sink.  With the columnar page layout the source
//!   classifies each 64-tuple batch wholesale from column summaries
//!   (`FeedbackRegistry::decide_batch`), so this configuration measures the
//!   batch-level guard fast path.
//! * **guarded_scalar** — the same plan with batch-level guard evaluation
//!   disabled (`with_batch_guards(false)`): every tuple pays the full
//!   per-tuple `FeedbackRegistry::decide` check.  The columnar-vs-scalar
//!   contrast is `guarded_source / guarded_scalar`.
//! * **partitioned4** — source → SHUFFLE(detector)×4 → SELECT replicas →
//!   MERGE → null sink.  Stresses per-tuple hash routing and the
//!   shuffle/merge control path.
//! * **many_operators** — source → 64 chained pass-through SELECTs → null
//!   sink, with the worker pool pinned to 4.  A plan far wider than the
//!   machine: thread-per-operator pays 66 stacks and the context switches
//!   between them, while the pooled executor multiplexes the chain onto 4
//!   workers and same-worker hand-offs never park a thread.
//!
//! Every run asserts `feedback_dropped == 0` and that no tuple was lost.
//! Throughput (tuples/sec, measured from the executor's own elapsed time,
//! excluding plan construction) is written as JSON to the path named by
//! `HOT_PATH_JSON` (default `BENCH_hot_path.local.json`, untracked — the
//! committed `BENCH_hot_path.json` records the zero-copy before/after
//! measurement and must not be clobbered by a casual local run; CI sets the
//! env var explicitly).  If `HOT_PATH_BASELINE`
//! names a JSON file from a previous run — e.g. one taken before an
//! optimisation, on the same machine — its (most recent) runs are embedded
//! as `"before"` and per-configuration speedups are printed;
//! `HOT_PATH_MIN_FANOUT_SPEEDUP` additionally gates the fan-out
//! configuration (the zero-copy change was verified with a pre-change
//! baseline at `2.0`, recording 2.72×/2.18× sync/threaded).
//! `HOT_PATH_MIN_POOLED_SPEEDUP` gates *within* the run: on the
//! `guarded_source` and `fanout4` configurations the pooled executor's
//! throughput must be at least the given multiple of the threaded
//! executor's (CI sets `1.0` — pooled must not lose to thread-per-operator
//! on plans where it has no width advantage).

use criterion::{criterion_group, criterion_main, Criterion};
use dsms_engine::{
    EngineResult, ExecutionReport, Operator, OperatorContext, PooledExecutor, StreamBuilder,
    SyncExecutor, ThreadedExecutor,
};
use dsms_feedback::FeedbackPunctuation;
use dsms_operators::{Duplicate, Merge, Select, Shuffle, StreamOps, TuplePredicate, VecSource};
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Tuple, Value};
use dsms_workloads::{TrafficConfig, TrafficGenerator};
use std::time::Duration;

const FAN_OUT: usize = 4;
const PARTITIONS: usize = 4;
const GUARDS: i64 = 8;
/// Chain length and pool size of the `many_operators` configuration.
const CHAIN: usize = 64;
const CHAIN_WORKERS: usize = 4;

/// Traffic schema plus a text attribute, so every tuple carries a string and
/// a copying hot path pays for it.
fn hot_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("detector", DataType::Int),
        ("speed", DataType::Float),
        ("volume", DataType::Int),
        ("freeway", DataType::Text),
    ])
}

fn dataset() -> Vec<Tuple> {
    let config = TrafficConfig {
        segments: 16,
        detectors_per_segment: 24,
        duration: StreamDuration::from_minutes(30),
        ..TrafficConfig::default()
    };
    let schema = hot_schema();
    TrafficGenerator::new(config)
        .map(|t| {
            let seg = t.int("segment").unwrap_or(0);
            let mut values = t.values().to_vec();
            values.push(Value::from(format!(
                "Interstate-{:02} northbound near milepost {:03}",
                5 + seg % 3,
                seg * 7 + 1
            )));
            Tuple::new(schema.clone(), values)
        })
        .collect()
}

/// Sink that discards its input; arrivals are still counted by the executor's
/// per-operator metrics, so the bench can verify nothing was lost without the
/// sink itself costing anything.
struct NullSink {
    name: String,
}

impl Operator for NullSink {
    fn name(&self) -> &str {
        &self.name
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        0
    }
    fn on_tuple(&mut self, _i: usize, _t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
        Ok(())
    }
    fn on_page(
        &mut self,
        _input: usize,
        _page: dsms_engine::Page,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        Ok(())
    }
}

fn make_source(tuples: Vec<Tuple>) -> VecSource {
    VecSource::new("source", tuples)
        .with_punctuation("timestamp", StreamDuration::from_secs(60))
        .with_batch_size(64)
}

/// A source with `GUARDS` distinct active assumed guards, none of which ever
/// matches a traffic tuple — every tuple pays the full guard check and still
/// flows through.
fn make_guarded_source(tuples: Vec<Tuple>) -> VecSource {
    let mut source = make_source(tuples);
    let mut ctx = OperatorContext::new();
    for i in 0..GUARDS {
        let pattern = Pattern::for_attributes(
            hot_schema(),
            &[("detector", PatternItem::Eq(Value::Int(-1 - i)))],
        )
        .expect("valid guard pattern");
        source
            .on_feedback(0, FeedbackPunctuation::assumed(pattern, "bench"), &mut ctx)
            .expect("guard registration");
    }
    source
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Config {
    Fanout,
    GuardedSource,
    GuardedScalar,
    Partitioned,
    ManyOperators,
}

impl Config {
    const ALL: [Config; 5] = [
        Config::Fanout,
        Config::GuardedSource,
        Config::GuardedScalar,
        Config::Partitioned,
        Config::ManyOperators,
    ];

    fn label(self) -> &'static str {
        match self {
            Config::Fanout => "fanout4",
            Config::GuardedSource => "guarded_source",
            Config::GuardedScalar => "guarded_scalar",
            Config::Partitioned => "partitioned4",
            Config::ManyOperators => "many_operators",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Exec {
    Sync,
    Threaded,
    Pooled,
}

impl Exec {
    const ALL: [Exec; 3] = [Exec::Sync, Exec::Threaded, Exec::Pooled];

    fn label(self) -> &'static str {
        match self {
            Exec::Sync => "sync",
            Exec::Threaded => "threaded",
            Exec::Pooled => "pooled",
        }
    }
}

struct RunResult {
    config: Config,
    executor: &'static str,
    elapsed: Duration,
    tuples: u64,
    tuples_per_sec: f64,
    feedback_dropped: u64,
    batches_conclusive: u64,
    batches_fallback: u64,
}

fn run_once(tuples: &[Tuple], config: Config, exec: Exec) -> RunResult {
    let mut builder = StreamBuilder::new().with_page_capacity(64).with_queue_capacity(8);
    if config == Config::ManyOperators {
        builder = builder.with_worker_pool(CHAIN_WORKERS);
    }
    match config {
        Config::Fanout => {
            let stream = builder.source_as(make_source(tuples.to_vec()), hot_schema()).unwrap();
            let branches =
                stream.apply_multi(Duplicate::new("fan-out", hot_schema(), FAN_OUT)).unwrap();
            for (i, branch) in branches.into_iter().enumerate() {
                branch.sink(NullSink { name: format!("sink-{i}") }).unwrap();
            }
        }
        Config::GuardedSource => {
            let stream =
                builder.source_as(make_guarded_source(tuples.to_vec()), hot_schema()).unwrap();
            stream.sink(NullSink { name: "sink-0".into() }).unwrap();
        }
        Config::GuardedScalar => {
            let source = make_guarded_source(tuples.to_vec()).with_batch_guards(false);
            let stream = builder.source_as(source, hot_schema()).unwrap();
            stream.sink(NullSink { name: "sink-0".into() }).unwrap();
        }
        Config::Partitioned => {
            let stream = builder.source_as(make_source(tuples.to_vec()), hot_schema()).unwrap();
            let shuffle =
                Shuffle::new("hot-shuffle", hot_schema(), &["detector"], PARTITIONS).unwrap();
            let merge = Merge::new("hot-merge", hot_schema(), PARTITIONS);
            stream
                .partitioned_stage(shuffle, merge, |i| {
                    Select::new(format!("pass-{i}"), hot_schema(), TuplePredicate::always())
                })
                .unwrap()
                .sink(NullSink { name: "sink-0".into() })
                .unwrap();
        }
        Config::ManyOperators => {
            let mut stream = builder.source_as(make_source(tuples.to_vec()), hot_schema()).unwrap();
            for i in 0..CHAIN {
                stream = stream
                    .apply(Select::new(format!("pass-{i}"), hot_schema(), TuplePredicate::always()))
                    .unwrap();
            }
            stream.sink(NullSink { name: "sink-0".into() }).unwrap();
        }
    }
    let plan = builder.build().expect("valid plan");
    let report: ExecutionReport = match exec {
        Exec::Sync => SyncExecutor::run(plan).expect("run failed"),
        Exec::Threaded => ThreadedExecutor::run(plan).expect("run failed"),
        Exec::Pooled => PooledExecutor::run(plan).expect("run failed"),
    };

    let source = report.operator("source").expect("source metrics");
    assert_eq!(source.tuples_out, tuples.len() as u64, "guards must not suppress anything");
    let delivered: u64 = report
        .metrics
        .iter()
        .filter(|m| m.operator.starts_with("sink-"))
        .map(|m| m.tuples_in)
        .sum();
    let expected = match config {
        Config::Fanout => (tuples.len() * FAN_OUT) as u64,
        _ => tuples.len() as u64,
    };
    assert_eq!(delivered, expected, "{}: tuples lost in flight", config.label());
    let batches_conclusive: u64 =
        report.metrics.iter().map(|m| m.feedback.batches_summary_conclusive).sum();
    let batches_fallback: u64 =
        report.metrics.iter().map(|m| m.feedback.batches_summary_fallback).sum();
    if config == Config::GuardedSource {
        assert!(
            batches_conclusive > 0,
            "guarded_source must exercise the batch-level guard fast path"
        );
    }

    RunResult {
        config,
        executor: exec.label(),
        elapsed: report.elapsed,
        tuples: source.tuples_out,
        tuples_per_sec: source.tuples_out as f64 / report.elapsed.as_secs_f64().max(1e-9),
        feedback_dropped: report.total_feedback_dropped(),
        batches_conclusive,
        batches_fallback,
    }
}

impl RunResult {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"config\":\"{}\",\"executor\":\"{}\",\"elapsed_ms\":{:.3},",
                "\"tuples\":{},\"tuples_per_sec\":{:.1},\"feedback_dropped\":{},",
                "\"batches_conclusive\":{},\"batches_fallback\":{}}}"
            ),
            self.config.label(),
            self.executor,
            self.elapsed.as_secs_f64() * 1_000.0,
            self.tuples,
            self.tuples_per_sec,
            self.feedback_dropped,
            self.batches_conclusive,
            self.batches_fallback,
        )
    }
}

/// Extracts `"config":"..","executor":"..","tuples_per_sec":N` triples from a
/// previously written report (a flat scan; the report format is our own).
/// A baseline report may itself carry `"before"`/`"after"` sections; only its
/// most recent (`"after"`) runs are the baseline — comparing against an
/// embedded older generation would mask regressions.
fn parse_baseline(json: &str) -> Vec<(String, String, f64)> {
    let relevant = json.rsplit("\"after\":").next().unwrap_or(json);
    let mut out = Vec::new();
    for chunk in relevant.split("{\"config\":\"").skip(1) {
        let Some(config) = chunk.split('"').next() else { continue };
        let Some(executor) =
            chunk.split("\"executor\":\"").nth(1).and_then(|s| s.split('"').next())
        else {
            continue;
        };
        let Some(tps) = chunk
            .split("\"tuples_per_sec\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse::<f64>().ok())
        else {
            continue;
        };
        out.push((config.to_string(), executor.to_string(), tps));
    }
    out
}

fn hot_path(c: &mut Criterion) {
    let tuples = dataset();
    let mut group = c.benchmark_group("hot_path");
    // Best-of estimation: each configuration keeps its fastest sample, so a
    // larger sample count mostly buys robustness against scheduler noise.
    group.sample_size(20);

    let mut best: Vec<RunResult> = Vec::new();
    for &config in &Config::ALL {
        for &exec in &Exec::ALL {
            let mut local: Option<RunResult> = None;
            group.bench_function(format!("{}/{}", config.label(), exec.label()), |b| {
                b.iter(|| {
                    let result = run_once(&tuples, config, exec);
                    assert_eq!(result.feedback_dropped, 0, "feedback must not be dropped");
                    if local.as_ref().map(|l| result.elapsed < l.elapsed).unwrap_or(true) {
                        local = Some(result);
                    }
                })
            });
            best.push(local.expect("at least one sample"));
        }
    }
    group.finish();

    for run in &best {
        println!(
            "hot_path: {:>14}/{:<8} {:>10.0} tuples/sec  ({:.2} ms)",
            run.config.label(),
            run.executor,
            run.tuples_per_sec,
            run.elapsed.as_secs_f64() * 1_000.0
        );
    }

    // Optional before/after comparison against a same-machine baseline run.
    // `HOT_PATH_MIN_FANOUT_SPEEDUP` additionally turns the comparison into a
    // gate on the fan-out configuration; it is only meaningful when the
    // baseline predates the change being measured (the zero-copy change was
    // gated at 2.0), so the threshold is explicit rather than hardcoded —
    // re-baselining against an already-optimised report would otherwise fail
    // spuriously.
    let baseline =
        std::env::var("HOT_PATH_BASELINE").ok().and_then(|path| std::fs::read_to_string(path).ok());
    let min_fanout_speedup =
        std::env::var("HOT_PATH_MIN_FANOUT_SPEEDUP").ok().and_then(|v| v.parse::<f64>().ok());
    // Gate for the batch-guard change: guarded_source vs a pre-columnar
    // baseline (the columnar change was verified with the zero-copy-era
    // baseline at 1.5).
    let min_guarded_speedup =
        std::env::var("HOT_PATH_MIN_GUARDED_SPEEDUP").ok().and_then(|v| v.parse::<f64>().ok());
    let baseline_runs = baseline.as_deref().map(parse_baseline).unwrap_or_default();
    for run in &best {
        if let Some((_, _, before_tps)) =
            baseline_runs.iter().find(|(c, e, _)| c == run.config.label() && e == run.executor)
        {
            let speedup = run.tuples_per_sec / before_tps;
            println!(
                "hot_path: {:>14}/{:<8} speedup vs baseline: {speedup:.2}x",
                run.config.label(),
                run.executor
            );
            let gate = match run.config {
                Config::Fanout => min_fanout_speedup,
                Config::GuardedSource => min_guarded_speedup,
                _ => None,
            };
            if let Some(min) = gate {
                assert!(
                    speedup >= min,
                    "{}/{} must be >={min}x over the baseline (got {speedup:.2}x)",
                    run.config.label(),
                    run.executor
                );
            }
        }
    }

    // Intra-run gate: the pooled scheduler must not lose to
    // thread-per-operator on the narrow plans where threading is at its best
    // (one hot chain, no width advantage for the pool).
    let min_pooled_speedup =
        std::env::var("HOT_PATH_MIN_POOLED_SPEEDUP").ok().and_then(|v| v.parse::<f64>().ok());
    for config in [Config::GuardedSource, Config::Fanout] {
        let tps = |executor: &str| {
            best.iter()
                .find(|r| r.config == config && r.executor == executor)
                .map(|r| r.tuples_per_sec)
                .expect("all executors ran")
        };
        let ratio = tps("pooled") / tps("threaded");
        println!("hot_path: {:>14} pooled vs threaded: {ratio:.2}x", config.label());
        if let Some(min) = min_pooled_speedup {
            assert!(
                ratio >= min,
                "{}: pooled must be >={min}x of threaded (got {ratio:.2}x)",
                config.label()
            );
        }
    }

    // Default to a path the `BENCH_*.json` ignore rule keeps untracked: the
    // repo commits a `BENCH_hot_path.json` recording the zero-copy
    // before/after measurement, and a casual local run must not clobber it.
    // CI points HOT_PATH_JSON at the canonical name for its artifact upload.
    let path =
        std::env::var("HOT_PATH_JSON").unwrap_or_else(|_| "BENCH_hot_path.local.json".to_string());
    let after: Vec<String> = best.iter().map(RunResult::json).collect();
    let before = match &baseline {
        Some(text) => {
            // Re-embed the baseline's own "after" (or flat) runs as "before".
            let runs: Vec<String> = parse_baseline(text)
                .iter()
                .map(|(config, executor, tps)| {
                    format!(
                        "{{\"config\":\"{config}\",\"executor\":\"{executor}\",\
                         \"tuples_per_sec\":{tps:.1}}}"
                    )
                })
                .collect();
            format!("[{}]", runs.join(","))
        }
        None => "null".to_string(),
    };
    let json = format!(
        concat!(
            "{{\"bench\":\"hot_path\",\"workload\":\"traffic+text\",\"tuples\":{},",
            "\"fan_out\":{},\"partitions\":{},\"guards\":{},\"chain\":{},",
            "\"chain_workers\":{},\"before\":{},\"after\":[{}]}}\n"
        ),
        tuples.len(),
        FAN_OUT,
        PARTITIONS,
        GUARDS,
        CHAIN,
        CHAIN_WORKERS,
        before,
        after.join(",")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("hot_path: could not write {path}: {err}");
    } else {
        println!("hot_path: JSON report written to {path}");
    }
}

criterion_group!(benches, hot_path);
criterion_main!(benches);
