//! Steady-state cost of punctuation-epoch checkpointing on the guard-checking
//! hot path.
//!
//! Supervision is only worth declaring if a healthy run barely pays for it.
//! Its cost has two parts: a fixed *supervision* cost (pages are retained for
//! replay before dispatch, deliveries are counted for post-restart
//! suppression) paid by every operator under a `Restart` policy, and a
//! *checkpoint* cost (state snapshots at punctuation-epoch boundaries) that
//! scales with the checkpoint interval.  This bench reuses the
//! `guarded_source` configuration from `hot_path` — a source carrying eight
//! active never-matching assumed guards feeding a supervised pass-through
//! SELECT into a null sink — and sweeps the checkpoint interval:
//!
//! * **failfast** — the SELECT keeps the default fail-fast policy: no
//!   supervision machinery at all.  Context for the fixed supervision cost.
//! * **disabled** — the SELECT declares `Restart` recovery but the plan sets
//!   checkpoint interval 0: checkpointing disabled (only the retention
//!   backstop can force a snapshot).  This is the baseline the acceptance
//!   gate compares against.
//! * **interval1 / interval4 / interval16** — epoch checkpoints every 1 / 4
//!   / 16 punctuations (4 is the plan default).
//!
//! Runs execute on the sync executor so the measurement is the checkpoint
//! machinery itself, not scheduler noise.  Every run asserts the sink saw
//! every tuple, `feedback_dropped == 0`, no restarts happened, and that
//! epoch-checkpointed runs actually took checkpoints.  Throughput is written
//! as JSON to the path named by `RECOVERY_JSON` (default
//! `BENCH_recovery.local.json`, untracked — the committed
//! `BENCH_recovery.json` records the acceptance measurement; CI points the
//! env var at the canonical name for its artifact upload).
//! `RECOVERY_MAX_DEFAULT_OVERHEAD` gates the sweep: the default interval's
//! throughput must be at least `1 - overhead` of the checkpointing-disabled
//! baseline (CI sets `0.10` — epoch checkpointing at the default interval
//! may cost at most 10%).

use criterion::{criterion_group, criterion_main, Criterion};
use dsms_engine::{
    EngineResult, ExecutionReport, Operator, OperatorContext, RecoveryPolicy, StreamBuilder,
    SyncExecutor,
};
use dsms_feedback::FeedbackPunctuation;
use dsms_operators::{Select, TuplePredicate, VecSource};
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Tuple, Value};
use dsms_workloads::{TrafficConfig, TrafficGenerator};
use std::time::Duration;

const GUARDS: i64 = 8;

/// Traffic schema plus a text attribute, matching `hot_path`'s
/// `guarded_source` configuration, so retained pages carry strings and
/// retention is not accidentally free.
fn hot_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("detector", DataType::Int),
        ("speed", DataType::Float),
        ("volume", DataType::Int),
        ("freeway", DataType::Text),
    ])
}

fn dataset() -> Vec<Tuple> {
    let config = TrafficConfig {
        segments: 16,
        detectors_per_segment: 24,
        duration: StreamDuration::from_minutes(30),
        ..TrafficConfig::default()
    };
    let schema = hot_schema();
    TrafficGenerator::new(config)
        .map(|t| {
            let seg = t.int("segment").unwrap_or(0);
            let mut values = t.values().to_vec();
            values.push(Value::from(format!(
                "Interstate-{:02} northbound near milepost {:03}",
                5 + seg % 3,
                seg * 7 + 1
            )));
            Tuple::new(schema.clone(), values)
        })
        .collect()
}

/// Sink that discards its input; arrivals are still counted by the
/// executor's per-operator metrics, so the bench can verify nothing was lost
/// without the sink itself costing anything.
struct NullSink {
    name: String,
}

impl Operator for NullSink {
    fn name(&self) -> &str {
        &self.name
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        0
    }
    fn on_tuple(&mut self, _i: usize, _t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
        Ok(())
    }
    fn on_page(
        &mut self,
        _input: usize,
        _page: dsms_engine::Page,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        Ok(())
    }
}

/// A source with `GUARDS` distinct active assumed guards, none of which ever
/// matches a traffic tuple — every batch pays the guard classification and
/// still flows through, and the punctuation cadence drives checkpoints.
fn make_guarded_source(tuples: Vec<Tuple>) -> VecSource {
    let mut source = VecSource::new("source", tuples)
        .with_punctuation("timestamp", StreamDuration::from_secs(60))
        .with_batch_size(64);
    let mut ctx = OperatorContext::new();
    for i in 0..GUARDS {
        let pattern = Pattern::for_attributes(
            hot_schema(),
            &[("detector", PatternItem::Eq(Value::Int(-1 - i)))],
        )
        .expect("valid guard pattern");
        source
            .on_feedback(0, FeedbackPunctuation::assumed(pattern, "bench"), &mut ctx)
            .expect("guard registration");
    }
    source
}

/// Sweep point: no supervision at all, or a supervised SELECT with the given
/// checkpoint interval (0 = checkpointing disabled, the gate's baseline).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Config {
    FailFast,
    Supervised { interval: u64 },
}

impl Config {
    const ALL: [Config; 5] = [
        Config::FailFast,
        Config::Supervised { interval: 0 },
        Config::Supervised { interval: 1 },
        Config::Supervised { interval: 4 },
        Config::Supervised { interval: 16 },
    ];

    fn label(self) -> String {
        match self {
            Config::FailFast => "failfast".to_string(),
            Config::Supervised { interval: 0 } => "disabled".to_string(),
            Config::Supervised { interval } => format!("interval{interval}"),
        }
    }
}

struct RunResult {
    config: Config,
    elapsed: Duration,
    tuples: u64,
    tuples_per_sec: f64,
    checkpoints_taken: u64,
    feedback_dropped: u64,
}

fn run_once(tuples: &[Tuple], config: Config) -> RunResult {
    let mut builder = StreamBuilder::new().with_page_capacity(64).with_queue_capacity(8);
    if let Config::Supervised { interval } = config {
        builder = builder.with_checkpoint_interval(interval);
    }
    let stream = builder.source_as(make_guarded_source(tuples.to_vec()), hot_schema()).unwrap();
    let mut select =
        stream.apply(Select::new("pass", hot_schema(), TuplePredicate::always())).unwrap();
    if matches!(config, Config::Supervised { .. }) {
        select = select
            .with_recovery(RecoveryPolicy::Restart { max_restarts: 1, backoff: Duration::ZERO });
    }
    select.sink(NullSink { name: "sink-0".into() }).unwrap();
    let plan = builder.build().expect("valid plan");
    let report: ExecutionReport = SyncExecutor::run(plan).expect("run failed");

    let source = report.operator("source").expect("source metrics");
    assert_eq!(source.tuples_out, tuples.len() as u64, "guards must not suppress anything");
    let sink = report.operator("sink-0").expect("sink metrics");
    assert_eq!(sink.tuples_in, tuples.len() as u64, "{}: tuples lost in flight", config.label());
    let recovery = report.recovery();
    assert_eq!(recovery.restarts, 0, "a healthy run must never restart");
    match config {
        Config::FailFast => {
            assert_eq!(recovery.checkpoints_taken, 0, "fail-fast runs must not checkpoint");
        }
        Config::Supervised { interval: 0 } => {
            // Only priming / the retention backstop may snapshot here; epoch
            // checkpointing is off.
        }
        Config::Supervised { .. } => {
            assert!(
                recovery.checkpoints_taken > 0,
                "{}: epoch-checkpointed runs must take checkpoints",
                config.label()
            );
        }
    }

    RunResult {
        config,
        elapsed: report.elapsed,
        tuples: source.tuples_out,
        tuples_per_sec: source.tuples_out as f64 / report.elapsed.as_secs_f64().max(1e-9),
        checkpoints_taken: recovery.checkpoints_taken,
        feedback_dropped: report.total_feedback_dropped(),
    }
}

impl RunResult {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"config\":\"{}\",\"executor\":\"sync\",\"elapsed_ms\":{:.3},",
                "\"tuples\":{},\"tuples_per_sec\":{:.1},\"checkpoints_taken\":{},",
                "\"feedback_dropped\":{}}}"
            ),
            self.config.label(),
            self.elapsed.as_secs_f64() * 1_000.0,
            self.tuples,
            self.tuples_per_sec,
            self.checkpoints_taken,
            self.feedback_dropped,
        )
    }
}

fn recovery(c: &mut Criterion) {
    let tuples = dataset();
    let mut group = c.benchmark_group("recovery");
    // Best-of estimation: each configuration keeps its fastest sample, so a
    // larger sample count mostly buys robustness against scheduler noise.
    // The acceptance gate is a ratio of two such best-of runs, so this bench
    // samples more than `hot_path` does to keep the ratio stable.
    group.sample_size(40);

    let mut best: Vec<RunResult> = Vec::new();
    for &config in &Config::ALL {
        let mut local: Option<RunResult> = None;
        group.bench_function(format!("guarded_source/{}", config.label()), |b| {
            b.iter(|| {
                let result = run_once(&tuples, config);
                assert_eq!(result.feedback_dropped, 0, "feedback must not be dropped");
                if local.as_ref().map(|l| result.elapsed < l.elapsed).unwrap_or(true) {
                    local = Some(result);
                }
            })
        });
        best.push(local.expect("at least one sample"));
    }
    group.finish();

    for run in &best {
        println!(
            "recovery: guarded_source/{:<10} {:>10.0} tuples/sec  ({:.2} ms, {} checkpoints)",
            run.config.label(),
            run.tuples_per_sec,
            run.elapsed.as_secs_f64() * 1_000.0,
            run.checkpoints_taken
        );
    }

    let tps = |config: Config| {
        best.iter()
            .find(|r| r.config == config)
            .map(|r| r.tuples_per_sec)
            .expect("all sweep points ran")
    };
    let baseline = tps(Config::Supervised { interval: 0 });
    for run in &best {
        if matches!(run.config, Config::Supervised { interval } if interval > 0) {
            println!(
                "recovery: guarded_source/{:<10} checkpoint overhead vs disabled: {:+.1}%",
                run.config.label(),
                (1.0 - run.tuples_per_sec / baseline) * 100.0
            );
        }
    }
    println!(
        "recovery: guarded_source supervision cost (disabled vs failfast): {:+.1}%",
        (1.0 - baseline / tps(Config::FailFast)) * 100.0
    );

    // Acceptance gate: epoch checkpointing at the plan's default interval
    // must cost at most RECOVERY_MAX_DEFAULT_OVERHEAD (CI sets 0.10) of the
    // checkpointing-disabled baseline's throughput.
    let max_overhead =
        std::env::var("RECOVERY_MAX_DEFAULT_OVERHEAD").ok().and_then(|v| v.parse::<f64>().ok());
    if let Some(max) = max_overhead {
        let ratio = tps(Config::Supervised { interval: 4 }) / baseline;
        assert!(
            ratio >= 1.0 - max,
            "interval4 must retain >={:.0}% of checkpointing-disabled throughput (got {:.1}%)",
            (1.0 - max) * 100.0,
            ratio * 100.0
        );
    }

    // Default to a path the `BENCH_*.json` ignore rule keeps untracked: the
    // repo commits a `BENCH_recovery.json` recording the acceptance
    // measurement, and a casual local run must not clobber it.  CI points
    // RECOVERY_JSON at the canonical name for its artifact upload.
    let path =
        std::env::var("RECOVERY_JSON").unwrap_or_else(|_| "BENCH_recovery.local.json".to_string());
    let runs: Vec<String> = best.iter().map(RunResult::json).collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"recovery\",\"workload\":\"traffic+text\",\"tuples\":{},",
            "\"guards\":{},\"default_interval\":4,\"runs\":[{}]}}\n"
        ),
        tuples.len(),
        GUARDS,
        runs.join(",")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("recovery: could not write {path}: {err}");
    } else {
        println!("recovery: JSON report written to {path}");
    }
}

criterion_group!(benches, recovery);
criterion_main!(benches);
