//! Criterion bench for Experiment 2 (Figure 7), scaled down: the speed-map
//! plan under schemes F0–F3 at a 2-minute viewport-change frequency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsms_bench::experiments::Scheme;
use dsms_bench::plans::speedmap_plan;
use dsms_bench::Experiment2Config;
use dsms_engine::ThreadedExecutor;
use dsms_types::StreamDuration;
use dsms_workloads::TrafficConfig;

fn bench_config() -> Experiment2Config {
    Experiment2Config {
        stream: TrafficConfig {
            duration: StreamDuration::from_minutes(20),
            detectors_per_segment: 4,
            ..TrafficConfig::default()
        },
        ..Experiment2Config::small()
    }
}

fn experiment2(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("experiment2_speedmap_schemes");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let (plan, _handles) =
                        speedmap_plan(&config, scheme, StreamDuration::from_minutes(2))
                            .expect("plan");
                    ThreadedExecutor::run(plan).expect("run failed")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, experiment2);
criterion_main!(benches);
