//! Elastic scale-out under a load spike.
//!
//! The stage is the shuffle → replicas → merge sandwich with a **blocking
//! archive-lookup cost** charged per tuple (Experiment 1's expensive
//! operator), built at width 4 but started with a single active replica.  A
//! spinning ingress stage models the arrival process: a burst of 3 000 bids
//! arriving at a fixed rate well above the single replica's service rate, so
//! the lone replica is the bottleneck and back-pressure stacks up behind it.
//! The elastic run's scripted policy reacts at the second punctuation
//! boundary by scaling out 1→4, and the replica threads then overlap their
//! blocking waits.  The fixed run keeps one active replica for the whole
//! stream — same plan shape, same dormant nodes, no resize — so the
//! comparison isolates exactly the elasticity.
//!
//! The ingress pacing is load-bearing for more than realism: the
//! Migrate/Ack/Commit handshake rides the control channels while the shuffle
//! buffers arrivals, and a source that can drain instantly would race its
//! end-of-stream against the acks (forcing the protocol's cancel-at-flush
//! path and a full-width-1 replay).  With arrivals spread over tens of
//! milliseconds the handshake always commits mid-stream, which is the
//! scenario the bench is about.
//!
//! Every run is checked, not just timed: the elastic digest must be
//! byte-identical to the fixed run, `feedback_dropped` must be 0, the resize
//! must actually commit, and the scaled-out run must beat the fixed
//! single-replica baseline by more than 1.5×.
//!
//! Besides the criterion timing lines, the bench writes a JSON report (per
//! configuration: elapsed, throughput, speedup, resize epochs, migration and
//! feedback counters, output digest) to the path named by `ELASTIC_JSON`, or
//! `BENCH_elastic.json` in the working directory by default.  CI runs this as
//! a smoke and uploads the JSON artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use dsms_engine::{ExecutionReport, StreamBuilder, ThreadedExecutor};
use dsms_operators::{
    Costed, ElasticPolicy, Merge, Select, Shuffle, StreamOps, TuplePredicate, VecSource,
};
use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Blocking per-tuple archive-lookup cost charged inside each replica.
const LOOKUP_COST: Duration = Duration::from_micros(80);
/// Spinning per-tuple ingress cost: the arrival rate of the spike (far above
/// one replica's service rate, comfortably below four replicas').
const INGRESS_COST: Duration = Duration::from_micros(15);
const MAX_WIDTH: usize = 4;
const TUPLES: i64 = 3_000;

fn schema() -> SchemaRef {
    Schema::shared(&[("ts", DataType::Timestamp), ("key", DataType::Int)])
}

fn spike() -> Vec<Tuple> {
    (0..TUPLES)
        .map(|i| {
            Tuple::new(
                schema(),
                vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % 64)],
            )
        })
        .collect()
}

struct RunResult {
    config: &'static str,
    elapsed: Duration,
    throughput_tps: f64,
    resizes: u64,
    migrated_groups: u64,
    epochs: Vec<(u64, usize)>,
    feedback_dropped: u64,
    digest: u64,
    outputs: u64,
    report: ExecutionReport,
}

/// Runs the stage with the given policy on the threaded executor.  The stage
/// is always built at `MAX_WIDTH`; the policy decides whether it ever leaves
/// a single active replica.
fn run_once(policy: ElasticPolicy, config: &'static str) -> RunResult {
    let builder = StreamBuilder::new().with_page_capacity(8).with_queue_capacity(2);
    let shuffle = Shuffle::new("shuffle", schema(), &["key"], MAX_WIDTH).expect("valid shuffle");
    let merge = Merge::new("merge", schema(), MAX_WIDTH);
    let results = builder
        .source(
            VecSource::new("source", spike()).with_punctuation("ts", StreamDuration::from_secs(50)),
        )
        .expect("source")
        .apply(Costed::spinning(
            Select::new("ingress", schema(), TuplePredicate::always()),
            INGRESS_COST,
        ))
        .expect("ingress")
        .elastic_stage(shuffle, merge, 1, policy, |i| {
            Costed::blocking_io(
                Select::new(format!("lookup-{i}"), schema(), TuplePredicate::always()),
                LOOKUP_COST,
            )
        })
        .expect("stage")
        .sink_collect("sink")
        .expect("sink");
    let report: ExecutionReport =
        ThreadedExecutor::run(builder.build().expect("plan")).expect("run");

    let collected = results.lock();
    let mut rows: Vec<String> = collected.iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    let mut hasher = DefaultHasher::new();
    rows.hash(&mut hasher);

    let stats = report.operator("shuffle").expect("shuffle metrics").elastic.clone().unwrap();
    RunResult {
        config,
        elapsed: report.elapsed,
        throughput_tps: TUPLES as f64 / report.elapsed.as_secs_f64().max(1e-9),
        resizes: stats.resizes,
        migrated_groups: stats.migrated_groups,
        epochs: stats.epochs,
        feedback_dropped: report.total_feedback_dropped(),
        digest: hasher.finish(),
        outputs: collected.len() as u64,
        report,
    }
}

impl RunResult {
    fn json(&self, speedup: f64) -> String {
        let epochs: Vec<String> = self.epochs.iter().map(|(e, w)| format!("[{e},{w}]")).collect();
        format!(
            concat!(
                "{{\"config\":\"{}\",\"elapsed_ms\":{:.3},\"throughput_tps\":{:.1},",
                "\"speedup_vs_fixed\":{:.3},\"resizes\":{},\"migrated_groups\":{},",
                "\"epochs\":[{}],\"outputs\":{},\"feedback_dropped\":{},",
                "\"output_digest\":\"{:016x}\"}}"
            ),
            self.config,
            self.elapsed.as_secs_f64() * 1_000.0,
            self.throughput_tps,
            speedup,
            self.resizes,
            self.migrated_groups,
            epochs.join(","),
            self.outputs,
            self.feedback_dropped,
            self.digest,
        )
    }
}

fn elastic(c: &mut Criterion) {
    let mut group = c.benchmark_group("elastic");
    group.sample_size(3);

    let mut best: Vec<RunResult> = Vec::new();
    for (config, policy) in [
        ("fixed-1", ElasticPolicy::Scripted(Vec::new())),
        ("elastic-1to4", ElasticPolicy::Scripted(vec![(2, MAX_WIDTH)])),
    ] {
        let mut local: Option<RunResult> = None;
        group.bench_function(config, |b| {
            b.iter(|| {
                let result = run_once(policy.clone(), config);
                assert_eq!(result.feedback_dropped, 0, "{config}: feedback must not be dropped");
                assert_eq!(result.outputs as i64, TUPLES, "{config}: no tuple lost or duplicated");
                if config != "fixed-1" {
                    assert_eq!(
                        result.resizes, 1,
                        "{config}: the scripted scale-out must commit mid-stream, not cancel"
                    );
                    assert_eq!(result.epochs, vec![(1, MAX_WIDTH)], "{config}");
                }
                if local.as_ref().map(|l| result.elapsed < l.elapsed).unwrap_or(true) {
                    local = Some(result);
                }
            })
        });
        best.push(local.expect("at least one sample"));
    }
    group.finish();

    let fixed = &best[0];
    let elastic = &best[1];
    assert_eq!(fixed.resizes, 0, "the fixed run must never leave one replica");
    assert_eq!(elastic.digest, fixed.digest, "scale-out must not change the result multiset");

    // One folded per-operator table (tuples, feedback, batch guards and the
    // stage's elastic counters) for the winning elastic run.
    println!("{}", dsms_bench::display::metrics_table(&elastic.report));

    let speedup = elastic.throughput_tps / fixed.throughput_tps;
    println!(
        "elastic: fixed-1 {:.0} tps, elastic-1to4 {:.0} tps ({speedup:.2}x)",
        fixed.throughput_tps, elastic.throughput_tps
    );
    assert!(
        speedup > 1.5,
        "scaling out 1→4 under the spike must beat the fixed single replica by 1.5x (got {speedup:.2}x)"
    );

    let path = std::env::var("ELASTIC_JSON").unwrap_or_else(|_| "BENCH_elastic.json".to_string());
    let runs: Vec<String> =
        best.iter().map(|r| r.json(r.throughput_tps / fixed.throughput_tps)).collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"elastic\",\"workload\":\"spike\",\"lookup_cost_us\":{},",
            "\"ingress_cost_us\":{},\"cost_model\":\"blocking_io\",\"max_width\":{},",
            "\"runs\":[{}]}}\n"
        ),
        LOOKUP_COST.as_micros(),
        INGRESS_COST.as_micros(),
        MAX_WIDTH,
        runs.join(",")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("elastic: could not write {path}: {err}");
    } else {
        println!("elastic: JSON report written to {path}");
    }
}

criterion_group!(benches, elastic);
criterion_main!(benches);
