//! Data-parallel scaling of a partitioned stateful stage.
//!
//! Runs the per-detector windowed average over the deterministic traffic
//! stream with the stage replicated across 1 / 2 / 4 / 8 hash partitions
//! (`TrafficConfig::partition_scaling`, ≈6.9k tuples, 384 distinct detector
//! keys).  The stage's per-tuple cost models a **blocking archive lookup**
//! (Experiment 1's expensive operator), so replica threads overlap their
//! waits and the threaded executor scales with the partition count even on a
//! single-core machine; a spinning (CPU-bound) stage would additionally need
//! physical cores.
//!
//! Every run is checked for correctness, not just timed:
//!
//! * the sink output's canonical (sorted) digest must be identical across
//!   all partition counts and executors — the shuffle/merge sandwich must
//!   not change the result multiset;
//! * `feedback_dropped` must be 0 everywhere (each run sends one mid-stream
//!   feedback message through the merge→replica broadcast path);
//! * the 4-partition threaded run must beat the 1-partition threaded run by
//!   more than 1.5× throughput.
//!
//! Besides the criterion-style timing lines, the bench writes a JSON report
//! (per configuration: partitions, executor, elapsed, throughput, speedup,
//! feedback counters, output digest) to the path named by
//! `PARTITION_SCALING_JSON`, or `BENCH_partition_scaling.json` in the
//! working directory by default.  CI runs this as a smoke and uploads the
//! JSON artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use dsms_bench::plans::partition_scaling_plan;
use dsms_engine::{ExecutionReport, SyncExecutor, ThreadedExecutor};
use dsms_types::Tuple;
use dsms_workloads::{TrafficConfig, TrafficGenerator};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Blocking per-tuple archive-lookup cost charged inside the stage.
const LOOKUP_COST: Duration = Duration::from_micros(120);
const PARTITIONS: [usize; 4] = [1, 2, 4, 8];

fn dataset() -> Vec<Tuple> {
    TrafficGenerator::new(TrafficConfig::partition_scaling()).collect()
}

struct RunResult {
    partitions: usize,
    executor: &'static str,
    elapsed: Duration,
    tuples: u64,
    throughput_tps: f64,
    feedback_out: u64,
    feedback_dropped: u64,
    digest: u64,
    outputs: u64,
}

/// Runs one configuration and returns timing plus correctness evidence.
fn run_once(tuples: &[Tuple], partitions: usize, threaded: bool) -> RunResult {
    let (plan, handles) =
        partition_scaling_plan(tuples.to_vec(), partitions, LOOKUP_COST).expect("valid plan");
    let report: ExecutionReport = if threaded {
        ThreadedExecutor::run(plan).expect("run failed")
    } else {
        SyncExecutor::run(plan).expect("run failed")
    };
    let arrivals = handles.output.lock();
    let mut rows: Vec<String> =
        arrivals.iter().map(|a| format!("{:?}", a.tuple.values())).collect();
    rows.sort_unstable();
    let mut hasher = DefaultHasher::new();
    rows.hash(&mut hasher);

    let source = report.operator("traffic-source").expect("source metrics");
    RunResult {
        partitions,
        executor: if threaded { "threaded" } else { "sync" },
        elapsed: report.elapsed,
        tuples: source.tuples_out,
        throughput_tps: source.tuples_out as f64 / report.elapsed.as_secs_f64().max(1e-9),
        feedback_out: report.total_feedback(),
        feedback_dropped: report.total_feedback_dropped(),
        digest: hasher.finish(),
        outputs: arrivals.len() as u64,
    }
}

impl RunResult {
    fn json(&self, speedup: f64) -> String {
        format!(
            concat!(
                "{{\"partitions\":{},\"executor\":\"{}\",\"elapsed_ms\":{:.3},",
                "\"tuples\":{},\"throughput_tps\":{:.1},\"speedup_vs_1\":{:.3},",
                "\"outputs\":{},\"feedback_out\":{},\"feedback_dropped\":{},",
                "\"output_digest\":\"{:016x}\"}}"
            ),
            self.partitions,
            self.executor,
            self.elapsed.as_secs_f64() * 1_000.0,
            self.tuples,
            self.throughput_tps,
            speedup,
            self.outputs,
            self.feedback_out,
            self.feedback_dropped,
            self.digest,
        )
    }
}

fn partition_scaling(c: &mut Criterion) {
    let tuples = dataset();
    let mut group = c.benchmark_group("partition_scaling");
    group.sample_size(3);

    // Timed series: the threaded executor across the partition counts.  The
    // recorded result is the best (min-elapsed) run per configuration, the
    // shim's own timing lines aside.
    let mut best: Vec<RunResult> = Vec::new();
    for &partitions in &PARTITIONS {
        let mut local: Option<RunResult> = None;
        group.bench_function(format!("threaded/{partitions}"), |b| {
            b.iter(|| {
                let result = run_once(&tuples, partitions, true);
                assert_eq!(result.feedback_dropped, 0, "feedback must not be dropped");
                if local.as_ref().map(|l| result.elapsed < l.elapsed).unwrap_or(true) {
                    local = Some(result);
                }
            })
        });
        best.push(local.expect("at least one sample"));
    }
    group.finish();

    // Correctness series: the sync executor at 1 and 4 partitions (run once —
    // its wall-clock is the full serial sum of the blocking costs).
    let sync_runs: Vec<RunResult> =
        [1usize, 4].iter().map(|&p| run_once(&tuples, p, false)).collect();

    // The partitioned plans must reproduce the single-replica output exactly.
    let reference = best[0].digest;
    for run in best.iter().chain(&sync_runs) {
        assert_eq!(
            run.digest, reference,
            "{}x{} output diverged from the single-replica result",
            run.executor, run.partitions
        );
        assert_eq!(run.feedback_dropped, 0);
        assert!(run.feedback_out >= 1, "the scheduled feedback must flow");
    }

    // The headline scaling claim.
    let base = best[0].throughput_tps;
    let at4 = best.iter().find(|r| r.partitions == 4).expect("4-partition run");
    let speedup4 = at4.throughput_tps / base;
    println!(
        "partition_scaling: threaded speedup vs 1 partition: {}",
        best.iter()
            .map(|r| format!("{}p={:.2}x", r.partitions, r.throughput_tps / base))
            .collect::<Vec<_>>()
            .join(" ")
    );
    assert!(
        speedup4 > 1.5,
        "4-partition throughput must exceed 1.5x the single-replica baseline (got {speedup4:.2}x)"
    );

    let path = std::env::var("PARTITION_SCALING_JSON")
        .unwrap_or_else(|_| "BENCH_partition_scaling.json".to_string());
    let runs: Vec<String> = best
        .iter()
        .map(|r| r.json(r.throughput_tps / base))
        .chain(sync_runs.iter().map(|r| {
            let sync_base = sync_runs[0].throughput_tps;
            r.json(r.throughput_tps / sync_base)
        }))
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"partition_scaling\",\"workload\":\"traffic\",",
            "\"lookup_cost_us\":{},\"cost_model\":\"blocking_io\",\"runs\":[{}]}}\n"
        ),
        LOOKUP_COST.as_micros(),
        runs.join(",")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("partition_scaling: could not write {path}: {err}");
    } else {
        println!("partition_scaling: JSON report written to {path}");
    }
}

criterion_group!(benches, partition_scaling);
criterion_main!(benches);
