//! Ablation: the adaptive feedback producers of Section 3.3 — THRIFTY JOIN
//! (assumed feedback for empty probe windows) and IMPATIENT JOIN (desired
//! feedback for build keys) — compared with the plain symmetric hash join on
//! the same sparse probe workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsms_engine::{Operator, OperatorContext};
use dsms_operators::{ImpatientJoin, SymmetricHashJoin, ThriftyJoin};
use dsms_punctuation::Punctuation;
use dsms_types::{DataType, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, Value};

fn sensor_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("speed", DataType::Float),
    ])
}

fn probe_schema() -> SchemaRef {
    Schema::shared(&[
        ("timestamp", DataType::Timestamp),
        ("segment", DataType::Int),
        ("avg", DataType::Float),
    ])
}

fn sensor(ts: i64, seg: i64) -> Tuple {
    Tuple::new(
        sensor_schema(),
        vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(50.0)],
    )
}

fn probe(ts: i64, seg: i64) -> Tuple {
    Tuple::new(
        probe_schema(),
        vec![Value::Timestamp(Timestamp::from_secs(ts)), Value::Int(seg), Value::Float(40.0)],
    )
}

fn base_join() -> SymmetricHashJoin {
    SymmetricHashJoin::new(
        "JOIN",
        sensor_schema(),
        probe_schema(),
        &["segment"],
        "timestamp",
        StreamDuration::from_secs(60),
    )
    .unwrap()
}

/// Drives a join variant over `minutes` of a sparse probe workload: sensors
/// report every second for 9 segments, probes appear only in every third
/// window.
fn drive(op: &mut dyn Operator, minutes: i64) {
    let mut ctx = OperatorContext::new();
    for minute in 0..minutes {
        for sec in 0..60 {
            let ts = minute * 60 + sec;
            for seg in 0..9 {
                op.on_tuple(0, sensor(ts, seg), &mut ctx).unwrap();
            }
            if minute % 3 == 0 && sec % 10 == 0 {
                op.on_tuple(1, probe(ts, sec % 9), &mut ctx).unwrap();
            }
            let _ = ctx.take_emitted();
            let _ = ctx.take_feedback();
        }
        let watermark = Timestamp::from_secs((minute + 1) * 60);
        op.on_punctuation(
            0,
            Punctuation::progress(sensor_schema(), "timestamp", watermark).unwrap(),
            &mut ctx,
        )
        .unwrap();
        op.on_punctuation(
            1,
            Punctuation::progress(probe_schema(), "timestamp", watermark).unwrap(),
            &mut ctx,
        )
        .unwrap();
        let _ = ctx.take_emitted();
        let _ = ctx.take_feedback();
    }
    op.on_flush(&mut ctx).unwrap();
}

fn adaptive_joins(c: &mut Criterion) {
    let minutes = 12;
    let mut group = c.benchmark_group("adaptive_join_variants");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::from_parameter("plain"), &minutes, |b, &m| {
        b.iter(|| {
            let mut op = base_join();
            drive(&mut op, m);
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("thrifty"), &minutes, |b, &m| {
        b.iter(|| {
            let mut op = ThriftyJoin::new(
                "THRIFTY",
                base_join(),
                sensor_schema(),
                "timestamp",
                StreamDuration::from_secs(60),
            );
            drive(&mut op, m);
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("impatient"), &minutes, |b, &m| {
        b.iter(|| {
            let mut op = ImpatientJoin::new("IMPATIENT", base_join(), probe_schema(), "segment")
                .with_batch(4);
            drive(&mut op, m);
        })
    });
    group.finish();
}

criterion_group!(benches, adaptive_joins);
criterion_main!(benches);
