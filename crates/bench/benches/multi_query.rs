//! Multi-query sharing throughput: one `PipelineManager` run versus N
//! independent single-query runs over the same traffic feed.
//!
//! N ∈ {1, 4, 16, 64} standing queries are registered against one shared
//! traffic source.  Each query is `source → select(viewport) → sink` where
//! the viewport predicate is drawn from a pool of `PREFIXES` distinct
//! filters, so the manager deduplicates both the source (instantiated once
//! instead of N times) and each distinct filter prefix (instantiated once per
//! group instead of once per query).  The unshared baseline runs the same N
//! plans as N independent executions, each with its own copy of the source —
//! what a DSMS without multi-query sharing would do.
//!
//! Every shared run asserts `feedback_dropped == 0`, and at N = 16 the
//! per-query sink digests are checked byte-identical to solo runs on both
//! executors.  Results (shared vs unshared elapsed, speedup, prefix hit
//! rate) are written as JSON to `MULTI_QUERY_JSON` (default
//! `BENCH_multi_query.local.json`, untracked — the committed
//! `BENCH_multi_query.json` records the reference measurement; CI points the
//! env var at the canonical name for its artifact upload).
//! `MULTI_QUERY_MIN_SHARED_SPEEDUP` gates the N = 16 configurations: the
//! shared run must be at least the given multiple faster than N independent
//! runs (CI sets `1.0` — sharing must never lose).

use criterion::{criterion_group, criterion_main, Criterion};
use dsms_engine::StreamBuilder;
use dsms_manager::{ExecutorKind, ManagerOutcome, PipelineManager};
use dsms_operators::{SinkHandle, StreamOps, TuplePredicate, VecSource};
use dsms_types::{StreamDuration, Tuple};
use dsms_workloads::{TrafficConfig, TrafficGenerator};
use std::time::Duration;

const QUERY_COUNTS: [usize; 4] = [1, 4, 16, 64];
/// Distinct filter prefixes the queries draw from (query i uses i % PREFIXES).
const PREFIXES: usize = 4;
const PAGE_CAPACITY: usize = 64;
const QUEUE_CAPACITY: usize = 8;
/// The N at which the shared-vs-unshared gate and digest checks apply.
const GATED_N: usize = 16;

fn dataset() -> Vec<Tuple> {
    TrafficGenerator::new(TrafficConfig::multi_query()).collect()
}

fn punctuated_source(tuples: Vec<Tuple>) -> VecSource {
    VecSource::new("traffic", tuples)
        .with_punctuation("timestamp", StreamDuration::from_secs(60))
        .with_batch_size(64)
}

/// The viewport predicate pool: distinct segment prefixes with distinct
/// fingerprints, all time-independent so selectivity does not drift across
/// the stream.
fn viewport(prefix: usize) -> TuplePredicate {
    let bound = 3 * (prefix as i64 + 1);
    TuplePredicate::new(format!("segment < {bound}"), move |t| {
        t.int("segment").map(|s| s < bound).unwrap_or(false)
    })
}

fn digest(handle: &SinkHandle) -> String {
    let mut rows: Vec<String> = handle.lock().iter().map(|t| format!("{:?}", t.values())).collect();
    rows.sort_unstable();
    rows.join("\n")
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Exec {
    Sync,
    Pooled,
}

impl Exec {
    const ALL: [Exec; 2] = [Exec::Sync, Exec::Pooled];

    fn label(self) -> &'static str {
        match self {
            Exec::Sync => "sync",
            Exec::Pooled => "pooled",
        }
    }

    fn kind(self) -> ExecutorKind {
        match self {
            Exec::Sync => ExecutorKind::Sync,
            Exec::Pooled => ExecutorKind::Pooled,
        }
    }
}

/// One shared run: a manager with `n` queries over one source.  Returns the
/// outcome and the per-query sink handles (registration order).
fn run_shared(tuples: &[Tuple], n: usize, exec: Exec) -> (ManagerOutcome, Vec<SinkHandle>) {
    let mut manager = PipelineManager::new()
        .with_page_capacity(PAGE_CAPACITY)
        .with_queue_capacity(QUEUE_CAPACITY);
    manager.add_source("traffic", punctuated_source(tuples.to_vec())).expect("valid source");
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let builder = StreamBuilder::new();
        let handle = builder
            .source(manager.source_ref("traffic").expect("source registered"))
            .expect("source ref")
            .select("filter", viewport(i % PREFIXES))
            .expect("select")
            .sink_collect("sink")
            .expect("sink");
        manager.register(format!("q{i}"), builder.build().expect("plan")).expect("register");
        handles.push(handle);
    }
    let outcome = manager.run(exec.kind()).expect("shared run");
    assert_eq!(outcome.master.total_feedback_dropped(), 0, "no feedback may be dropped");
    (outcome, handles)
}

/// The unshared baseline: the same `n` plans run independently, each scanning
/// its own copy of the feed.  Returns the summed executor-reported elapsed
/// time and the sink handles.
fn run_unshared(tuples: &[Tuple], n: usize, exec: Exec) -> (Duration, Vec<SinkHandle>) {
    let mut total = Duration::ZERO;
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let builder = StreamBuilder::new()
            .with_page_capacity(PAGE_CAPACITY)
            .with_queue_capacity(QUEUE_CAPACITY);
        let handle = builder
            .source(punctuated_source(tuples.to_vec()))
            .expect("source")
            .select("filter", viewport(i % PREFIXES))
            .expect("select")
            .sink_collect("sink")
            .expect("sink");
        let plan = builder.build().expect("plan");
        let report = match exec {
            Exec::Sync => dsms_engine::SyncExecutor::run(plan).expect("solo run"),
            Exec::Pooled => dsms_engine::PooledExecutor::run(plan).expect("solo run"),
        };
        total += report.elapsed;
        handles.push(handle);
    }
    (total, handles)
}

struct RunResult {
    queries: usize,
    executor: &'static str,
    shared: Duration,
    unshared: Duration,
    speedup: f64,
    hit_rate: f64,
    shared_ops: usize,
    unshared_ops: usize,
}

impl RunResult {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"queries\":{},\"executor\":\"{}\",\"shared_ms\":{:.3},",
                "\"unshared_ms\":{:.3},\"speedup\":{:.3},\"prefix_hit_rate\":{:.3},",
                "\"shared_operators\":{},\"unshared_operators\":{}}}"
            ),
            self.queries,
            self.executor,
            self.shared.as_secs_f64() * 1_000.0,
            self.unshared.as_secs_f64() * 1_000.0,
            self.speedup,
            self.hit_rate,
            self.shared_ops,
            self.unshared_ops,
        )
    }
}

fn multi_query(c: &mut Criterion) {
    let tuples = dataset();
    let mut group = c.benchmark_group("multi_query");
    group.sample_size(10);

    let mut results: Vec<RunResult> = Vec::new();
    for &n in &QUERY_COUNTS {
        for &exec in &Exec::ALL {
            // Best-of over criterion's samples for the shared run.
            let mut shared_best: Option<ManagerOutcome> = None;
            group.bench_function(format!("shared/{}q/{}", n, exec.label()), |b| {
                b.iter(|| {
                    let (outcome, _handles) = run_shared(&tuples, n, exec);
                    if shared_best
                        .as_ref()
                        .map(|best| outcome.master.elapsed < best.master.elapsed)
                        .unwrap_or(true)
                    {
                        shared_best = Some(outcome);
                    }
                })
            });
            let shared_best = shared_best.expect("at least one sample");

            // Unshared baseline: best-of-3 outside criterion (N independent
            // executions per sample are too coarse for its timing loop).
            let unshared_best = (0..3)
                .map(|_| run_unshared(&tuples, n, exec).0)
                .min()
                .expect("three baseline samples");

            if n == GATED_N {
                // Byte-identical digests: every managed query must match the
                // solo run of the same plan.
                let (_, shared_handles) = run_shared(&tuples, n, exec);
                let (_, solo_handles) = run_unshared(&tuples, n, exec);
                for (i, (shared, solo)) in shared_handles.iter().zip(&solo_handles).enumerate() {
                    assert_eq!(
                        digest(shared),
                        digest(solo),
                        "{}q/{}: query q{i} digest must be byte-identical to its solo run",
                        n,
                        exec.label()
                    );
                }
            }

            let summary = &shared_best.summary;
            assert_eq!(summary.queries_active, n, "all queries must finish attached");
            // N queries × (source + filter), minus one source and PREFIXES
            // filters actually instantiated.
            let unshared_ops = 2 * n;
            let shared_ops = unshared_ops - summary.shared_prefix_hits;
            results.push(RunResult {
                queries: n,
                executor: exec.label(),
                shared: shared_best.master.elapsed,
                unshared: unshared_best,
                speedup: unshared_best.as_secs_f64()
                    / shared_best.master.elapsed.as_secs_f64().max(1e-9),
                hit_rate: summary.hit_rate(),
                shared_ops,
                unshared_ops,
            });
        }
    }
    group.finish();

    for run in &results {
        println!(
            "multi_query: {:>3}q/{:<6} shared {:>8.2} ms vs unshared {:>8.2} ms \
             ({:.2}x, prefix hit rate {:.0}%)",
            run.queries,
            run.executor,
            run.shared.as_secs_f64() * 1_000.0,
            run.unshared.as_secs_f64() * 1_000.0,
            run.speedup,
            run.hit_rate * 100.0
        );
    }

    // The CI gate: at N = 16, sharing must beat N independent runs by the
    // configured factor on every executor (1.0 in CI — never lose).
    if let Some(min) =
        std::env::var("MULTI_QUERY_MIN_SHARED_SPEEDUP").ok().and_then(|v| v.parse::<f64>().ok())
    {
        for run in results.iter().filter(|r| r.queries == GATED_N) {
            assert!(
                run.speedup >= min,
                "{}q/{}: shared must be >={min}x of {} independent runs (got {:.2}x)",
                run.queries,
                run.executor,
                run.queries,
                run.speedup
            );
        }
    }

    let path = std::env::var("MULTI_QUERY_JSON")
        .unwrap_or_else(|_| "BENCH_multi_query.local.json".to_string());
    let after: Vec<String> = results.iter().map(RunResult::json).collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"multi_query\",\"workload\":\"traffic\",\"tuples\":{},",
            "\"prefixes\":{},\"after\":[{}]}}\n"
        ),
        tuples.len(),
        PREFIXES,
        after.join(",")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("multi_query: could not write {path}: {err}");
    } else {
        println!("multi_query: JSON report written to {path}");
    }
}

criterion_group!(benches, multi_query);
criterion_main!(benches);
