//! Benchmarks of the characterization machinery behind Tables 1 and 2: how
//! expensive it is for an operator to decide, on feedback arrival, which
//! actions are correct and what can be propagated safely.

use criterion::{criterion_group, criterion_main, Criterion};
use dsms_feedback::{
    characterize_aggregate, characterize_join, AggregateSpec, AttributeMapping, JoinSpec,
    Monotonicity,
};
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::{DataType, Schema, Value};
use std::hint::black_box;

fn count_spec() -> AggregateSpec {
    let output = Schema::shared(&[("g", DataType::Int), ("a", DataType::Int)]);
    let input = Schema::shared(&[("g", DataType::Int), ("v", DataType::Float)]);
    AggregateSpec {
        output: output.clone(),
        input: input.clone(),
        group_attributes: vec![0],
        aggregate_attribute: 1,
        input_mapping: AttributeMapping::by_name(output, input).unwrap(),
        monotonicity: Monotonicity::NonDecreasing,
    }
}

fn join_spec() -> JoinSpec {
    let left = Schema::shared(&[("l", DataType::Int), ("j", DataType::Int)]);
    let right = Schema::shared(&[("j", DataType::Int), ("r", DataType::Int)]);
    let output =
        Schema::shared(&[("l", DataType::Int), ("j", DataType::Int), ("r", DataType::Int)]);
    JoinSpec {
        output: output.clone(),
        left: left.clone(),
        right: right.clone(),
        left_attributes: vec![0],
        join_attributes: vec![1],
        right_attributes: vec![2],
        left_mapping: AttributeMapping::by_name(output.clone(), left).unwrap(),
        right_mapping: AttributeMapping::by_name(output, right).unwrap(),
    }
}

fn characterization(c: &mut Criterion) {
    let agg = count_spec();
    let group_feedback =
        Pattern::for_attributes(agg.output.clone(), &[("g", PatternItem::Eq(Value::Int(7)))])
            .unwrap();
    let value_feedback =
        Pattern::for_attributes(agg.output.clone(), &[("a", PatternItem::Ge(Value::Int(100)))])
            .unwrap();
    c.bench_function("characterize_count_group_feedback", |b| {
        b.iter(|| characterize_aggregate(black_box(&agg), black_box(&group_feedback)).unwrap())
    });
    c.bench_function("characterize_count_value_feedback", |b| {
        b.iter(|| characterize_aggregate(black_box(&agg), black_box(&value_feedback)).unwrap())
    });

    let join = join_spec();
    let join_feedback =
        Pattern::for_attributes(join.output.clone(), &[("j", PatternItem::Eq(Value::Int(4)))])
            .unwrap();
    c.bench_function("characterize_join_key_feedback", |b| {
        b.iter(|| characterize_join(black_box(&join), black_box(&join_feedback)).unwrap())
    });
}

criterion_group!(benches, characterization);
criterion_main!(benches);
