//! Feedback delivery latency: wall-clock time from the moment a sink hands
//! feedback punctuation to the executor to the moment the source's
//! `on_feedback` callback runs, for both executors and for the two moments
//! that matter most:
//!
//! * **midstream** — feedback sent while data is still flowing, the paper's
//!   common case (a viewport change, an assumed punctuation).  Under the
//!   threaded executor this exercises the event-driven control path: the
//!   source must be woken from its channel wait by the control message, not
//!   by a poll timer.
//! * **at_flush** — feedback sent from the sink's `on_flush`, the case the
//!   drain protocol exists for: every upstream operator has already finished
//!   producing, yet the message must still be relayed to the (live) source.
//!
//! Besides the criterion-style timing lines (which time whole plan runs),
//! the bench writes a JSON report of the measured *latencies* (per scenario:
//! samples, mean/min/max/p50 nanoseconds) to the path named by
//! `FEEDBACK_LATENCY_JSON`, or `BENCH_feedback_latency.json` in the working
//! directory by default.  CI runs this as a short smoke and uploads the JSON
//! as the `BENCH_feedback_latency.json` artifact, seeding the perf
//! trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use dsms_engine::{
    EngineResult, Operator, OperatorContext, SourceState, StreamBuilder, SyncExecutor,
    ThreadedExecutor,
};
use dsms_feedback::FeedbackPunctuation;
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::{DataType, Schema, SchemaRef, Timestamp, Tuple, Value};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TUPLES: i64 = 20_000;
const FEEDBACK_AFTER: u64 = 1_000;

fn schema() -> SchemaRef {
    Schema::shared(&[("timestamp", DataType::Timestamp), ("v", DataType::Int)])
}

/// Shared send/receive instants for one run.
#[derive(Clone, Default)]
struct Probe {
    sent: Arc<Mutex<Option<Instant>>>,
    latency: Arc<Mutex<Option<Duration>>>,
}

impl Probe {
    fn mark_sent(&self) {
        *self.sent.lock() = Some(Instant::now());
    }

    fn mark_received(&self) {
        if let Some(sent) = *self.sent.lock() {
            *self.latency.lock() = Some(sent.elapsed());
        }
    }
}

/// Source emitting a fixed stream, timestamping feedback arrival.
struct ProbeSource {
    n: i64,
    next: i64,
    probe: Probe,
}

impl Operator for ProbeSource {
    fn name(&self) -> &str {
        "source"
    }
    fn inputs(&self) -> usize {
        0
    }
    fn on_tuple(&mut self, _i: usize, _t: Tuple, _c: &mut OperatorContext) -> EngineResult<()> {
        Ok(())
    }
    fn on_feedback(
        &mut self,
        _output: usize,
        _feedback: FeedbackPunctuation,
        _ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        self.probe.mark_received();
        Ok(())
    }
    fn poll_source(&mut self, ctx: &mut OperatorContext) -> EngineResult<SourceState> {
        if self.next >= self.n {
            return Ok(SourceState::Exhausted);
        }
        let v = self.next;
        self.next += 1;
        ctx.emit(
            0,
            Tuple::new(schema(), vec![Value::Timestamp(Timestamp::from_secs(v)), Value::Int(v)]),
        );
        Ok(SourceState::Producing)
    }
}

/// Sink sending one timestamped feedback message, midstream or at flush.
struct ProbeSink {
    probe: Probe,
    at_flush: bool,
    seen: u64,
    sent: bool,
}

impl ProbeSink {
    fn feedback(&self) -> FeedbackPunctuation {
        FeedbackPunctuation::assumed(
            Pattern::for_attributes(schema(), &[("v", PatternItem::Ge(Value::Int(i64::MAX / 2)))])
                .unwrap(),
            "sink",
        )
    }
}

impl Operator for ProbeSink {
    fn name(&self) -> &str {
        "sink"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        0
    }
    fn on_tuple(&mut self, _i: usize, _t: Tuple, ctx: &mut OperatorContext) -> EngineResult<()> {
        self.seen += 1;
        if !self.at_flush && !self.sent && self.seen >= FEEDBACK_AFTER {
            self.sent = true;
            let feedback = self.feedback();
            self.probe.mark_sent();
            ctx.send_feedback(0, feedback);
        }
        Ok(())
    }
    fn on_flush(&mut self, ctx: &mut OperatorContext) -> EngineResult<()> {
        if self.at_flush && !self.sent {
            self.sent = true;
            let feedback = self.feedback();
            self.probe.mark_sent();
            ctx.send_feedback(0, feedback);
        }
        Ok(())
    }
}

/// Runs one plan and returns the observed sink→source feedback latency.
fn run_once(threaded: bool, at_flush: bool) -> Duration {
    let probe = Probe::default();
    let builder = StreamBuilder::new().with_page_capacity(64).with_queue_capacity(16);
    builder
        .source_as(ProbeSource { n: TUPLES, next: 0, probe: probe.clone() }, schema())
        .unwrap()
        .sink(ProbeSink { probe: probe.clone(), at_flush, seen: 0, sent: false })
        .unwrap();
    let plan = builder.build().unwrap();
    let report = if threaded {
        ThreadedExecutor::run(plan).expect("run failed")
    } else {
        SyncExecutor::run(plan).expect("run failed")
    };
    assert_eq!(report.operator("source").unwrap().feedback_in, 1, "feedback must arrive");
    assert_eq!(report.total_feedback_dropped(), 0, "feedback must not be dropped");
    let latency = probe.latency.lock().expect("latency recorded");
    latency
}

struct ScenarioStats {
    executor: &'static str,
    scenario: &'static str,
    samples: Vec<Duration>,
}

impl ScenarioStats {
    fn json(&self) -> String {
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        format!(
            concat!(
                "{{\"executor\":\"{}\",\"scenario\":\"{}\",\"samples\":{},",
                "\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{}}}"
            ),
            self.executor,
            self.scenario,
            ns.len(),
            mean,
            ns.first().unwrap(),
            ns.last().unwrap(),
            ns[ns.len() / 2]
        )
    }
}

fn feedback_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_latency");
    group.sample_size(10);

    let mut stats: Vec<ScenarioStats> = Vec::new();
    for (executor, threaded) in [("sync", false), ("threaded", true)] {
        for (scenario, at_flush) in [("midstream", false), ("at_flush", true)] {
            let samples = Arc::new(Mutex::new(Vec::new()));
            let recorded = samples.clone();
            group.bench_function(format!("{executor}/{scenario}"), |b| {
                b.iter(|| {
                    let latency = run_once(threaded, at_flush);
                    recorded.lock().push(latency);
                    latency
                })
            });
            let samples = samples.lock().clone();
            stats.push(ScenarioStats { executor, scenario, samples });
        }
    }
    group.finish();

    let path = std::env::var("FEEDBACK_LATENCY_JSON")
        .unwrap_or_else(|_| "BENCH_feedback_latency.json".to_string());
    let scenarios: Vec<String> = stats.iter().map(ScenarioStats::json).collect();
    let json = format!(
        "{{\"bench\":\"feedback_latency\",\"tuples_per_run\":{TUPLES},\"scenarios\":[{}]}}\n",
        scenarios.join(",")
    );
    if let Err(err) = std::fs::write(&path, &json) {
        eprintln!("feedback_latency: could not write {path}: {err}");
    } else {
        println!("feedback_latency: JSON report written to {path}");
    }
}

criterion_group!(benches, feedback_latency);
criterion_main!(benches);
