//! # dsms-bench
//!
//! Experiment harness regenerating every figure of the paper's evaluation
//! (Section 6) plus the analytic tables, and Criterion micro/meso benchmarks.
//!
//! * [`plans`] — builders for the two query plans of Figure 4:
//!   the imputation plan (Experiment 1) and the speed-map plan (Experiment 2).
//! * [`experiments`] — runnable experiment drivers returning structured
//!   results: [`experiments::run_experiment1`] (Figures 5 and 6) and
//!   [`experiments::run_experiment2`] (Figure 7).
//! * [`display`] — the speed-map viewport operator that turns zoom events into
//!   event-driven assumed feedback, plus [`display::metrics_table`], the
//!   shared per-operator metrics renderer (tuple counts, feedback traffic,
//!   batch-guard outcomes and elastic resizes in a single table).
//! * [`report`] — plain-text/CSV rendering of the results in the same shape as
//!   the paper's figures.
//!
//! The binaries `figure5_6`, `figure7` and `tables1_2` print paper-shaped
//! output; the Criterion benches under `benches/` run scaled-down versions of
//! the same drivers plus ablations.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod display;
pub mod experiments;
pub mod plans;
pub mod report;

pub use experiments::{
    run_experiment1, run_experiment2, Experiment1Config, Experiment1Result, Experiment2Config,
    Experiment2Result, OutputRecord, Scheme,
};
