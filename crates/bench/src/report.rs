//! Plain-text and CSV rendering of experiment results, shaped like the
//! paper's figures so EXPERIMENTS.md can be filled in directly from the
//! binaries' output.

use crate::experiments::{Experiment1Result, Experiment2Result, Scheme};
use std::fmt::Write as _;

/// Renders the Figure 5/6 scatter series as CSV
/// (`tuple_id,path,output_time_secs,lag_ms`).
pub fn experiment1_csv(result: &Experiment1Result) -> String {
    let mut out = String::from("tuple_id,path,output_time_secs,lag_ms\n");
    for r in &result.series {
        let _ = writeln!(
            out,
            "{},{},{:.4},{}",
            r.tuple_id,
            if r.imputed { "imputed" } else { "clean" },
            r.output_time_secs,
            r.lag.as_millis()
        );
    }
    out
}

/// Renders the Figure 5/6 headline numbers (fraction of imputed tuples lost).
pub fn experiment1_summary(baseline: &Experiment1Result, feedback: &Experiment1Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Experiment 1 — imputation plan (Figures 5 and 6)");
    let _ = writeln!(out, "  dirty tuples in input ........... {}", baseline.dirty_input);
    let _ = writeln!(
        out,
        "  without feedback (Figure 5) ..... {:5.1}% of imputed tuples beyond tolerance   [paper: 97%]",
        baseline.dropped_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  with PACE + feedback (Figure 6) . {:5.1}% of imputed tuples dropped            [paper: 29%]",
        feedback.dropped_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  run time: baseline {:.2}s, feedback {:.2}s",
        baseline.elapsed.as_secs_f64(),
        feedback.elapsed.as_secs_f64()
    );
    out
}

/// Renders the Figure 7 grid (execution time per scheme and frequency).
pub fn experiment2_table(result: &Experiment2Result, frequencies: &[i64]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Experiment 2 — speed-map plan (Figure 7)");
    let _ = writeln!(out, "  execution time in seconds (relative to F0 in parentheses)");
    let mut header = String::from("  freq(min)");
    for scheme in Scheme::ALL {
        let _ = write!(header, " {:>16}", scheme.label());
    }
    let _ = writeln!(out, "{header}");
    for &minutes in frequencies {
        let mut row = format!("  {minutes:>9}");
        for scheme in Scheme::ALL {
            match (result.cell(scheme, minutes), result.relative_to_baseline(scheme, minutes)) {
                (Some(cell), Some(rel)) => {
                    let _ = write!(
                        row,
                        " {:>9.2}s ({:>4.0}%)",
                        cell.execution_time.as_secs_f64(),
                        rel * 100.0
                    );
                }
                _ => {
                    let _ = write!(row, " {:>16}", "-");
                }
            }
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(out, "  paper: F1 ≈ 50% of F0, F2 ≈ 39%, F3 ≈ 35%; flat across frequencies");
    out
}

/// Renders the Figure 7 grid as CSV (`frequency_min,scheme,seconds,rendered`).
pub fn experiment2_csv(result: &Experiment2Result) -> String {
    let mut out = String::from("frequency_min,scheme,seconds,rendered_results\n");
    for cell in &result.cells {
        let _ = writeln!(
            out,
            "{},{},{:.4},{}",
            cell.zoom_frequency_minutes,
            cell.scheme.label(),
            cell.execution_time.as_secs_f64(),
            cell.rendered_results
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Experiment2Cell, OutputRecord};
    use dsms_types::StreamDuration;
    use std::time::Duration;

    fn fake_exp1(feedback: bool, dropped: f64) -> Experiment1Result {
        Experiment1Result {
            feedback,
            series: vec![OutputRecord {
                tuple_id: 1,
                imputed: true,
                output_time_secs: 0.5,
                lag: StreamDuration::from_millis(10),
            }],
            dirty_input: 2_500,
            timely_imputed: ((1.0 - dropped) * 2_500.0) as u64,
            dropped_fraction: dropped,
            elapsed: Duration::from_secs(1),
        }
    }

    #[test]
    fn experiment1_rendering() {
        let csv = experiment1_csv(&fake_exp1(false, 0.97));
        assert!(csv.starts_with("tuple_id,path"));
        assert!(csv.contains("imputed"));
        let summary = experiment1_summary(&fake_exp1(false, 0.97), &fake_exp1(true, 0.29));
        assert!(summary.contains("97.0%"));
        assert!(summary.contains("29.0%"));
    }

    #[test]
    fn experiment2_rendering() {
        let cells = vec![
            Experiment2Cell {
                scheme: Scheme::F0,
                zoom_frequency_minutes: 2,
                execution_time: Duration::from_secs(10),
                rendered_results: 100,
            },
            Experiment2Cell {
                scheme: Scheme::F1,
                zoom_frequency_minutes: 2,
                execution_time: Duration::from_secs(5),
                rendered_results: 40,
            },
        ];
        let result = Experiment2Result { cells };
        let table = experiment2_table(&result, &[2]);
        assert!(table.contains("F1"));
        assert!(table.contains("50%"), "{table}");
        let csv = experiment2_csv(&result);
        assert!(csv.contains("2,F0,10.0000,100"));
    }
}
