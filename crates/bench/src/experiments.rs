//! Experiment drivers: Section 6 of the paper, as runnable functions.

use crate::plans::{imputation_plan, speedmap_plan};
use dsms_engine::{EngineResult, ThreadedExecutor};
use dsms_types::{StreamDuration, Timestamp};
use dsms_workloads::{ImputationConfig, TrafficConfig};
use serde::Serialize;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Experiment 1 — imputation plan, Figures 5 and 6
// ---------------------------------------------------------------------------

/// Parameters of Experiment 1.
///
/// The stream is replayed *live*: the source paces tuple release so that
/// stream time advances at `speedup` stream seconds per wall-clock second.
/// The clean path forwards tuples immediately while the dirty path pays the
/// archival-lookup cost per tuple, so when the lookup cost exceeds the dirty
/// inter-arrival time the imputed path falls progressively behind — the
/// divergence of Figure 5.
#[derive(Debug, Clone)]
pub struct Experiment1Config {
    /// The input stream (5 000 alternating clean/dirty tuples in the paper).
    pub stream: ImputationConfig,
    /// Stream seconds per wall-clock second at the source.
    pub speedup: f64,
    /// Per-dirty-tuple archival lookup cost (the expensive part of IMPUTE).
    pub lookup_cost: Duration,
    /// PACE's disorder tolerance, in stream time.
    pub tolerance: StreamDuration,
    /// Minimum advance of the feedback cutoff between consecutive feedback
    /// messages (smaller = tighter feedback loop, more control messages).
    pub feedback_granularity: StreamDuration,
    /// Progress-punctuation period of the source.
    pub punctuation_period: StreamDuration,
    /// Tuples emitted per source step.
    pub source_batch: usize,
    /// Tuples per page on every queue.
    pub page_capacity: usize,
}

impl Experiment1Config {
    /// Paper-shaped configuration: 5 000 tuples whose 200-second span is
    /// replayed at 10× (≈20 s wall-clock per run), with an archival lookup
    /// that is ~1.4× the dirty-tuple inter-arrival time so the imputed path
    /// diverges, and a tolerance small enough that the divergence matters.
    pub fn paper() -> Self {
        Experiment1Config {
            stream: ImputationConfig::experiment1(), // 5 000 tuples, 40 ms apart
            speedup: 10.0,
            // dirty inter-arrival = 80 ms stream = 8 ms wall at 10×
            lookup_cost: Duration::from_millis(11),
            tolerance: StreamDuration::from_secs(4),
            feedback_granularity: StreamDuration::from_secs(1),
            punctuation_period: StreamDuration::from_secs(2),
            source_batch: 32,
            page_capacity: 4,
        }
    }

    /// Scaled-down configuration for tests and CI benches (≈1.2 s per run).
    pub fn small() -> Self {
        Experiment1Config {
            stream: ImputationConfig { tuples: 600, ..ImputationConfig::experiment1() },
            speedup: 20.0,
            // dirty inter-arrival = 80 ms stream = 4 ms wall at 20×
            lookup_cost: Duration::from_micros(6_000),
            tolerance: StreamDuration::from_secs(2),
            feedback_granularity: StreamDuration::from_millis(400),
            punctuation_period: StreamDuration::from_secs(1),
            source_batch: 16,
            page_capacity: 4,
        }
    }
}

/// One output arrival, classified for the Figure 5/6 scatter series.
#[derive(Debug, Clone, Serialize)]
pub struct OutputRecord {
    /// The tuple id assigned by the workload generator.
    pub tuple_id: i64,
    /// Whether this tuple travelled the imputation (dirty) path.
    pub imputed: bool,
    /// Wall-clock output time, seconds since the run started.
    pub output_time_secs: f64,
    /// Stream-time lag behind the output watermark at the moment of arrival.
    pub lag: StreamDuration,
}

/// Result of one Experiment-1 run.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment1Result {
    /// Whether PACE + feedback were enabled.
    pub feedback: bool,
    /// Per-arrival records (the Figure 5/6 series).
    pub series: Vec<OutputRecord>,
    /// Total dirty (imputation-requiring) tuples in the input.
    pub dirty_input: u64,
    /// Imputed tuples that reached the output *within* the tolerance.
    pub timely_imputed: u64,
    /// Fraction of imputed tuples effectively lost (dropped by PACE, skipped
    /// via feedback, or arriving beyond the tolerance).
    pub dropped_fraction: f64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Runs Experiment 1 once.
///
/// Without feedback the plan merges via plain UNION: every tuple reaches the
/// output, and an imputed tuple counts as *lost* when it arrives more than the
/// tolerance behind the stream-time watermark already seen at the sink
/// (Figure 5's "arrived beyond the tolerated divergence").  With feedback the
/// plan merges via PACE: late tuples are dropped at PACE and their production
/// is suppressed upstream via assumed punctuation, so an imputed tuple counts
/// as lost simply when it never reaches the output (Figure 6's "dropped").
pub fn run_experiment1(
    config: &Experiment1Config,
    feedback: bool,
) -> EngineResult<Experiment1Result> {
    let (plan, handles) = imputation_plan(config, feedback)?;
    let report = ThreadedExecutor::run(plan)?;

    let arrivals = handles.output.lock();
    let mut series = Vec::with_capacity(arrivals.len());
    let mut watermark: Option<Timestamp> = None;
    let mut timely_imputed = 0u64;
    for record in arrivals.iter() {
        let tuple_id = record.tuple.int("tuple_id").unwrap_or(-1);
        let ts = record.tuple.timestamp("timestamp").unwrap_or(Timestamp::EPOCH);
        watermark = Some(watermark.map(|w| w.max(ts)).unwrap_or(ts));
        let lag = watermark.expect("just set") - ts;
        // Strict alternation: odd tuple ids required imputation.
        let imputed = tuple_id % 2 == 1;
        if imputed && lag.as_millis() <= config.tolerance.as_millis() {
            timely_imputed += 1;
        }
        series.push(OutputRecord {
            tuple_id,
            imputed,
            output_time_secs: record.arrival.as_secs_f64(),
            lag,
        });
    }
    drop(arrivals);

    let dirty_input = config.stream.tuples / 2;
    let dropped_fraction =
        if dirty_input == 0 { 0.0 } else { 1.0 - timely_imputed as f64 / dirty_input as f64 };
    Ok(Experiment1Result {
        feedback,
        series,
        dirty_input,
        timely_imputed,
        dropped_fraction,
        elapsed: report.elapsed,
    })
}

// ---------------------------------------------------------------------------
// Experiment 2 — speed-map plan, Figure 7
// ---------------------------------------------------------------------------

/// The four optimization schemes of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Scheme {
    /// Baseline: no feedback exploitation anywhere.
    F0,
    /// Guard on the output of AVERAGE.
    F1,
    /// F1 plus avoiding aggregation of uninteresting groups.
    F2,
    /// F2 plus propagating the feedback to the quality filter.
    F3,
}

impl Scheme {
    /// All schemes in presentation order.
    pub const ALL: [Scheme; 4] = [Scheme::F0, Scheme::F1, Scheme::F2, Scheme::F3];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::F0 => "F0",
            Scheme::F1 => "F1",
            Scheme::F2 => "F2",
            Scheme::F3 => "F3",
        }
    }
}

/// Parameters of Experiment 2.
#[derive(Debug, Clone)]
pub struct Experiment2Config {
    /// The fixed-sensor stream (18 h × 20 s × 9 segments × 40 detectors in the
    /// paper).
    pub stream: TrafficConfig,
    /// Aggregation window of AVERAGE.
    pub window: StreamDuration,
    /// Number of segments visible after each zoom.
    pub visible_segments: usize,
    /// Per-tuple validation cost in the quality filter.
    pub validation_cost: Duration,
    /// Per-result rendering cost in the display.
    pub render_cost: Duration,
    /// Progress-punctuation period of the source.
    pub punctuation_period: StreamDuration,
    /// Seed of the zoom schedule.
    pub zoom_seed: u64,
    /// Tuples emitted per source step.
    pub source_batch: usize,
    /// Tuples per page on every queue.
    pub page_capacity: usize,
}

impl Experiment2Config {
    /// Paper-scale configuration (≈1 M tuples, 18 hours of stream time).
    pub fn paper() -> Self {
        Experiment2Config {
            stream: TrafficConfig::experiment2(),
            window: StreamDuration::from_secs(60),
            visible_segments: 2,
            validation_cost: Duration::from_micros(2),
            render_cost: Duration::from_micros(800),
            punctuation_period: StreamDuration::from_secs(60),
            zoom_seed: 9,
            source_batch: 256,
            page_capacity: 128,
        }
    }

    /// Scaled-down configuration (≈1 hour of stream time) for tests and CI.
    pub fn small() -> Self {
        Experiment2Config {
            stream: TrafficConfig {
                duration: StreamDuration::from_hours(1),
                detectors_per_segment: 8,
                ..TrafficConfig::default()
            },
            window: StreamDuration::from_secs(60),
            visible_segments: 2,
            validation_cost: Duration::from_micros(2),
            render_cost: Duration::from_micros(800),
            punctuation_period: StreamDuration::from_secs(60),
            zoom_seed: 9,
            source_batch: 256,
            page_capacity: 128,
        }
    }
}

/// One cell of the Figure-7 grid.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment2Cell {
    /// The scheme that produced this measurement.
    pub scheme: Scheme,
    /// Viewport-change (feedback) frequency.
    pub zoom_frequency_minutes: i64,
    /// Total query execution time.
    pub execution_time: Duration,
    /// Number of results actually rendered by the display.
    pub rendered_results: usize,
}

/// Result of a full Experiment-2 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment2Result {
    /// All measured cells (schemes × frequencies).
    pub cells: Vec<Experiment2Cell>,
}

impl Experiment2Result {
    /// The cell for a given scheme and frequency, if measured.
    pub fn cell(&self, scheme: Scheme, minutes: i64) -> Option<&Experiment2Cell> {
        self.cells.iter().find(|c| c.scheme == scheme && c.zoom_frequency_minutes == minutes)
    }

    /// Execution time of a scheme relative to F0 at the same frequency
    /// (1.0 = as slow as the baseline).
    pub fn relative_to_baseline(&self, scheme: Scheme, minutes: i64) -> Option<f64> {
        let base = self.cell(Scheme::F0, minutes)?.execution_time.as_secs_f64();
        let this = self.cell(scheme, minutes)?.execution_time.as_secs_f64();
        if base == 0.0 {
            None
        } else {
            Some(this / base)
        }
    }
}

/// Runs Experiment 2 for every scheme at each of the given zoom frequencies
/// (the paper uses 2, 4 and 6 minutes).
pub fn run_experiment2(
    config: &Experiment2Config,
    frequencies_minutes: &[i64],
) -> EngineResult<Experiment2Result> {
    let mut cells = Vec::new();
    for &minutes in frequencies_minutes {
        for scheme in Scheme::ALL {
            let (plan, handles) =
                speedmap_plan(config, scheme, StreamDuration::from_minutes(minutes))?;
            let report = ThreadedExecutor::run(plan)?;
            cells.push(Experiment2Cell {
                scheme,
                zoom_frequency_minutes: minutes,
                execution_time: report.elapsed,
                rendered_results: handles.rendered.lock().len(),
            });
        }
    }
    Ok(Experiment2Result { cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment1_feedback_recovers_timely_imputed_tuples() {
        let config = Experiment1Config::small();
        let baseline = run_experiment1(&config, false).unwrap();
        let with_feedback = run_experiment1(&config, true).unwrap();

        assert_eq!(baseline.dirty_input, 300);
        // Baseline: the imputed path falls hopelessly behind; most imputed
        // tuples arrive beyond the tolerance.
        assert!(
            baseline.dropped_fraction > 0.7,
            "baseline should lose most imputed tuples, lost {:.2}",
            baseline.dropped_fraction
        );
        // Feedback: PACE + assumed punctuation keep the imputed path near the
        // head of the stream, so substantially more imputed tuples are timely.
        assert!(
            with_feedback.dropped_fraction < baseline.dropped_fraction - 0.1,
            "feedback must recover timely tuples (baseline {:.2}, feedback {:.2})",
            baseline.dropped_fraction,
            with_feedback.dropped_fraction
        );
        // Clean tuples always arrive: half the stream plus timely imputed ones.
        assert!(with_feedback.series.len() as u64 >= config.stream.tuples / 2);
    }

    #[test]
    fn experiment2_schemes_order_execution_times() {
        let mut config = Experiment2Config::small();
        // Keep the test fast but the cost structure intact.
        config.stream.duration = StreamDuration::from_minutes(20);
        let result = run_experiment2(&config, &[2]).unwrap();
        assert_eq!(result.cells.len(), 4);
        let f0 = result.cell(Scheme::F0, 2).unwrap().execution_time;
        let f1 = result.cell(Scheme::F1, 2).unwrap().execution_time;
        let f3 = result.cell(Scheme::F3, 2).unwrap().execution_time;
        assert!(f1 < f0, "guarding AVERAGE's output must beat the baseline ({f1:?} vs {f0:?})");
        assert!(f3 < f0, "full propagation must beat the baseline ({f3:?} vs {f0:?})");
        // Fewer results should be rendered under any feedback scheme.
        let rendered_f0 = result.cell(Scheme::F0, 2).unwrap().rendered_results;
        let rendered_f1 = result.cell(Scheme::F1, 2).unwrap().rendered_results;
        assert!(rendered_f1 < rendered_f0);
    }
}
