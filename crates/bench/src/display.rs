//! The speed-map display: an event-driven feedback source.
//!
//! In Experiment 2 a navigation display shows the speed map and the user zooms
//! into a subset of segments every few minutes.  Each zoom is an event-driven
//! feedback opportunity: segments outside the viewport are of no interest
//! until the next zoom, so the display sends assumed punctuation
//! `¬[segment ∈ hidden]` up the plan (to AVERAGE, which may relay it further
//! under scheme F3).
//!
//! The display is also where result *rendering* cost is paid — constructing
//! and drawing a map update per aggregate result — which is why mounting a
//! guard on AVERAGE's output (scheme F1) already saves substantial time.
//!
//! This module also hosts [`metrics_table`], the one renderer examples and
//! benches share for per-operator [`dsms_engine::ExecutionReport`] metrics
//! (tuple counts, feedback traffic, batch-guard outcomes, elastic resizes).

use dsms_engine::{EngineResult, ExecutionReport, Operator, OperatorContext};
use dsms_feedback::{EventDrivenPolicy, FeedbackPunctuation};
use dsms_operators::simulate_cost;
use dsms_types::{SchemaRef, Timestamp, Tuple};
use dsms_workloads::ZoomSchedule;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Shared handle to the rendered results.
pub type DisplayHandle = Arc<Mutex<Vec<Tuple>>>;

/// A sink that renders aggregate results and issues viewport feedback.
pub struct SpeedMapDisplay {
    name: String,
    /// Attribute of the incoming result tuples carrying the window start time
    /// (drives the zoom schedule).
    time_attribute: String,
    /// Attribute identifying the segment of a result tuple.
    segment_attribute: String,
    schedule: ZoomSchedule,
    next_event: usize,
    policy: EventDrivenPolicy,
    feedback_enabled: bool,
    render_cost: Duration,
    rendered: DisplayHandle,
    feedback_sent: u64,
    schema: SchemaRef,
}

impl SpeedMapDisplay {
    /// Creates a display over the aggregate's output schema.
    ///
    /// * `schema` — schema of the incoming result tuples;
    /// * `segments` — the full segment universe;
    /// * `schedule` — when the viewport changes and what stays visible;
    /// * `render_cost` — simulated cost of drawing one result on the map;
    /// * `feedback_enabled` — whether zoom events are turned into feedback
    ///   (false reproduces the F0 baseline where the display stays silent).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        time_attribute: impl Into<String>,
        segment_attribute: impl Into<String>,
        segments: impl IntoIterator<Item = i64>,
        schedule: ZoomSchedule,
        render_cost: Duration,
        feedback_enabled: bool,
    ) -> (Self, DisplayHandle) {
        let rendered: DisplayHandle = Arc::new(Mutex::new(Vec::new()));
        let segment_attribute = segment_attribute.into();
        (
            SpeedMapDisplay {
                name: name.into(),
                time_attribute: time_attribute.into(),
                policy: EventDrivenPolicy::viewport(segment_attribute.clone(), segments),
                segment_attribute,
                schedule,
                next_event: 0,
                feedback_enabled,
                render_cost,
                rendered: rendered.clone(),
                feedback_sent: 0,
                schema,
            },
            rendered,
        )
    }

    /// Number of feedback messages issued.
    pub fn feedback_sent(&self) -> u64 {
        self.feedback_sent
    }

    fn fire_due_events(&mut self, now: Timestamp, ctx: &mut OperatorContext) -> EngineResult<()> {
        while self.next_event < self.schedule.len()
            && self.schedule.events()[self.next_event].at <= now
        {
            let event = &self.schedule.events()[self.next_event];
            self.next_event += 1;
            if !self.feedback_enabled {
                continue;
            }
            if let Some(feedback) = self
                .policy
                .feedback(self.schema.clone(), &event.visible, &self.name)
                .map_err(dsms_engine::EngineError::from)?
            {
                self.feedback_sent += 1;
                ctx.send_feedback(0, feedback);
            }
        }
        Ok(())
    }
}

impl Operator for SpeedMapDisplay {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> usize {
        1
    }

    fn feedback_roles(&self) -> dsms_feedback::FeedbackRoles {
        // Event-driven producer: the zoom schedule turns viewport changes
        // into assumed feedback (Experiment 2) — unless feedback is disabled
        // for the baseline runs.
        if self.feedback_enabled {
            dsms_feedback::FeedbackRoles::producer()
        } else {
            dsms_feedback::FeedbackRoles::NONE
        }
    }

    fn schema_in(&self, _input: usize) -> Option<SchemaRef> {
        Some(self.schema.clone())
    }

    fn outputs(&self) -> usize {
        0
    }

    fn on_tuple(
        &mut self,
        _input: usize,
        tuple: Tuple,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Ok(ts) = tuple.timestamp(&self.time_attribute) {
            self.fire_due_events(ts, ctx)?;
        }
        let _ = &self.segment_attribute;
        simulate_cost(self.render_cost);
        self.rendered.lock().push(tuple);
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _input: usize,
        punctuation: dsms_punctuation::Punctuation,
        ctx: &mut OperatorContext,
    ) -> EngineResult<()> {
        if let Some(w) = punctuation.watermark_for(&self.time_attribute) {
            self.fire_due_events(w, ctx)?;
        }
        Ok(())
    }

    fn feedback_stats(&self) -> Option<dsms_feedback::FeedbackStats> {
        let mut stats = dsms_feedback::FeedbackStats::default();
        stats.issued.assumed = self.feedback_sent;
        Some(stats)
    }
}

/// Renders a report's per-operator metrics as one aligned table, folding the
/// feedback counters (`suppressed`, `batch_guards=conclusive/fallback`) and
/// [`dsms_engine::ElasticStats`] into the same row as the tuple counts, so
/// examples and benches stop printing three disjoint metric dumps.
///
/// Columns: `operator | in | out | fb_in | fb_out | drop | suppressed |
/// guards c/f | elastic`.  The elastic column shows
/// `resizes=N migrated=G width=W` for the operator coordinating an elastic
/// stage and `-` everywhere else.
pub fn metrics_table(report: &ExecutionReport) -> String {
    let header = [
        "operator".to_string(),
        "in".into(),
        "out".into(),
        "fb_in".into(),
        "fb_out".into(),
        "drop".into(),
        "suppressed".into(),
        "guards c/f".into(),
        "elastic".into(),
    ];
    let mut rows: Vec<[String; 9]> = vec![header];
    for m in &report.metrics {
        let elastic = match &m.elastic {
            Some(e) => {
                let width = e.epochs.last().map(|&(_, w)| w).unwrap_or(1);
                format!("resizes={} migrated={} width={width}", e.resizes, e.migrated_groups)
            }
            None => "-".into(),
        };
        rows.push([
            m.operator.clone(),
            m.tuples_in.to_string(),
            m.tuples_out.to_string(),
            m.feedback_in.to_string(),
            m.feedback_out.to_string(),
            m.feedback_dropped.to_string(),
            m.feedback.tuples_suppressed.to_string(),
            format!(
                "{}/{}",
                m.feedback.batches_summary_conclusive, m.feedback.batches_summary_fallback
            ),
            elastic,
        ]);
    }
    let mut widths = [0usize; 9];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for row in rows {
        let mut line = String::new();
        for (col, (cell, width)) in row.iter().zip(widths).enumerate() {
            if col > 0 {
                line.push_str("  ");
            }
            if col == 0 || col == 8 {
                // Text columns left-aligned, counters right-aligned.
                line.push_str(&format!("{cell:<width$}"));
            } else {
                line.push_str(&format!("{cell:>width$}"));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// A feedback punctuation constructor reused by tests: the assumed pattern a
/// display would send for a given visible set (exposed for unit testing the
/// plan wiring without running a whole experiment).
pub fn viewport_feedback(
    schema: SchemaRef,
    segment_attribute: &str,
    universe: impl IntoIterator<Item = i64>,
    visible: impl IntoIterator<Item = i64>,
    issuer: &str,
) -> Option<FeedbackPunctuation> {
    let policy = EventDrivenPolicy::viewport(segment_attribute, universe);
    let visible = visible.into_iter().collect();
    policy.feedback(schema, &visible, issuer).ok().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsms_types::{DataType, Schema, StreamDuration, Value};

    fn result_schema() -> SchemaRef {
        Schema::shared(&[
            ("window", DataType::Timestamp),
            ("segment", DataType::Int),
            ("avg", DataType::Float),
        ])
    }

    fn result(window_secs: i64, segment: i64) -> Tuple {
        Tuple::new(
            result_schema(),
            vec![
                Value::Timestamp(Timestamp::from_secs(window_secs)),
                Value::Int(segment),
                Value::Float(42.0),
            ],
        )
    }

    #[test]
    fn zoom_events_fire_as_stream_time_passes() {
        let schedule = ZoomSchedule::new(
            9,
            3,
            StreamDuration::from_minutes(2),
            StreamDuration::from_minutes(10),
            1,
        );
        let (mut display, rendered) = SpeedMapDisplay::new(
            "MAP",
            result_schema(),
            "window",
            "segment",
            0..9,
            schedule,
            Duration::ZERO,
            true,
        );
        let mut ctx = OperatorContext::new();
        display.on_tuple(0, result(0, 1), &mut ctx).unwrap();
        assert_eq!(display.feedback_sent(), 1, "the time-zero viewport fires immediately");
        display.on_tuple(0, result(300, 1), &mut ctx).unwrap(); // 5 minutes in
        assert_eq!(display.feedback_sent(), 3, "2- and 4-minute viewports have fired");
        assert_eq!(rendered.lock().len(), 2);
        assert_eq!(ctx.take_feedback().len(), 3);
    }

    #[test]
    fn silent_display_renders_but_sends_nothing() {
        let schedule = ZoomSchedule::new(
            9,
            3,
            StreamDuration::from_minutes(2),
            StreamDuration::from_minutes(10),
            1,
        );
        let (mut display, _rendered) = SpeedMapDisplay::new(
            "MAP",
            result_schema(),
            "window",
            "segment",
            0..9,
            schedule,
            Duration::ZERO,
            false,
        );
        let mut ctx = OperatorContext::new();
        display.on_tuple(0, result(600, 1), &mut ctx).unwrap();
        assert_eq!(display.feedback_sent(), 0);
        assert!(ctx.take_feedback().is_empty());
    }

    #[test]
    fn metrics_table_folds_feedback_and_elastic_counters_into_one_view() {
        use dsms_engine::{ElasticStats, OperatorMetrics};
        let mut select = OperatorMetrics::new("select");
        select.tuples_in = 100;
        select.tuples_out = 40;
        select.feedback_in = 2;
        select.feedback_out = 1;
        select.feedback.tuples_suppressed = 60;
        select.feedback.batches_summary_conclusive = 7;
        select.feedback.batches_summary_fallback = 3;
        let mut shuffle = OperatorMetrics::new("shuffle");
        shuffle.tuples_in = 40;
        shuffle.tuples_out = 40;
        shuffle.elastic = Some(ElasticStats {
            resizes: 2,
            cancelled: 0,
            migrated_groups: 5,
            epochs: vec![(1, 2), (2, 4)],
        });
        let report = ExecutionReport {
            elapsed: Duration::from_millis(1),
            metrics: vec![select, shuffle],
            scheduler: None,
        };
        let table = metrics_table(&report);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "header plus one row per operator:\n{table}");
        assert!(lines[0].contains("guards c/f") && lines[0].contains("elastic"), "{table}");
        assert!(lines[1].contains("7/3") && lines[1].contains("60"), "{table}");
        assert!(lines[2].contains("resizes=2 migrated=5 width=4"), "{table}");
        // Aligned: every line is equally wide once the elastic column pads.
        assert!(lines[1].starts_with("select"), "{table}");
    }

    #[test]
    fn viewport_feedback_helper_builds_assumed_patterns() {
        let fb = viewport_feedback(result_schema(), "segment", 0..9, [0, 1], "MAP").unwrap();
        assert!(fb.describes(&result(0, 5)));
        assert!(!fb.describes(&result(0, 1)));
        assert!(viewport_feedback(result_schema(), "segment", 0..3, 0..3, "MAP").is_none());
    }
}
