//! Builders for the two query plans of Figure 4.
//!
//! * [`imputation_plan`] — Figure 4(a): a stream of sensor readings is split
//!   into a clean path and a dirty path; the dirty path goes through the
//!   expensive IMPUTE operator; PACE (or a plain UNION for the baseline)
//!   merges both paths under a disorder bound.
//! * [`speedmap_plan`] — Figure 4(b): a data-quality filter feeds a windowed
//!   AVERAGE per segment whose results drive the speed-map display; the
//!   display issues event-driven viewport feedback exploited under schemes
//!   F0–F3.

use crate::display::{DisplayHandle, SpeedMapDisplay};
use crate::experiments::{Experiment1Config, Experiment2Config, Scheme};
use dsms_engine::{EngineResult, QueryPlan};
use dsms_operators::aggregate::FeedbackMode;
use dsms_operators::WindowAggregate;
use dsms_operators::{
    AggregateFunction, ArchivalStore, GeneratorSource, Impute, Pace, QualityFilter, Split,
    TimedSink, TimedSinkHandle, TuplePredicate, Union,
};
use dsms_types::StreamDuration;
use dsms_workloads::{ImputationGenerator, TrafficGenerator, ZoomSchedule};

/// Handles needed to evaluate Experiment 1 after the plan has run.
pub struct ImputationPlanHandles {
    /// Arrival-timed output of the merge operator.
    pub output: TimedSinkHandle,
}

/// Builds the imputation plan (Figure 4a).
///
/// With `feedback` set, the merge operator is PACE (drops late tuples and
/// issues assumed feedback that IMPUTE and the split exploit); without it, the
/// merge is a plain UNION and nothing is dropped or fed back — the Figure 5
/// baseline.
pub fn imputation_plan(
    config: &Experiment1Config,
    feedback: bool,
) -> EngineResult<(QueryPlan, ImputationPlanHandles)> {
    let schema = ImputationGenerator::schema();
    let mut plan = QueryPlan::new().with_page_capacity(config.page_capacity);

    let generator = ImputationGenerator::new(config.stream.clone());
    let source = plan.add(
        GeneratorSource::new("sensor-source", generator)
            .with_punctuation("timestamp", config.punctuation_period)
            .with_batch_size(config.source_batch)
            .with_pacing(config.speedup),
    );

    let split = plan.add(Split::new(
        "split-dirty-clean",
        schema.clone(),
        TuplePredicate::new("speed is null", |t| t.has_null()),
    ));

    let impute = plan.add(Impute::new(
        "IMPUTE",
        "speed",
        "detector",
        ArchivalStore::synthetic(config.lookup_cost, 45.0),
    ));

    let (sink, output) = TimedSink::new("speed-map-feed");
    let sink = plan.add(sink.with_watermark("timestamp"));

    if feedback {
        let pace = plan.add(
            Pace::new("PACE", schema, 2, "timestamp", config.tolerance)
                .with_feedback_granularity(config.feedback_granularity),
        );
        plan.connect_simple(source, split)?;
        plan.connect(split, 0, impute, 0)?; // dirty path
        plan.connect(impute, 0, pace, 0)?;
        plan.connect(split, 1, pace, 1)?; // clean path
        plan.connect_simple(pace, sink)?;
    } else {
        let union = plan.add(Union::new("UNION", schema, 2));
        plan.connect_simple(source, split)?;
        plan.connect(split, 0, impute, 0)?;
        plan.connect(impute, 0, union, 0)?;
        plan.connect(split, 1, union, 1)?;
        plan.connect_simple(union, sink)?;
    }
    Ok((plan, ImputationPlanHandles { output }))
}

/// Handles needed to evaluate Experiment 2 after the plan has run.
pub struct SpeedmapPlanHandles {
    /// Results actually rendered by the display.
    pub rendered: DisplayHandle,
}

/// Builds the speed-map plan (Figure 4b) wired for one of the schemes F0–F3
/// and one feedback frequency.
pub fn speedmap_plan(
    config: &Experiment2Config,
    scheme: Scheme,
    zoom_frequency: StreamDuration,
) -> EngineResult<(QueryPlan, SpeedmapPlanHandles)> {
    let schema = TrafficGenerator::schema();
    let mut plan = QueryPlan::new().with_page_capacity(config.page_capacity);

    let generator = TrafficGenerator::new(config.stream.clone());
    let segments = config.stream.segments;
    let duration = config.stream.duration;
    let source = plan.add(
        GeneratorSource::new("detector-source", generator)
            .with_punctuation("timestamp", config.punctuation_period)
            .with_batch_size(config.source_batch),
    );

    // σQ — the data-quality filter at the bottom of the plan.  It exploits
    // (relayed) feedback only under scheme F3.
    let mut quality = QualityFilter::new(
        "QUALITY",
        schema.clone(),
        TuplePredicate::new("plausible speed", |t| {
            t.value_by_name("speed").map(|v| !v.is_null()).unwrap_or(false)
                && t.float("speed").map(|s| (0.0..=120.0).contains(&s)).unwrap_or(false)
        }),
        config.validation_cost,
    )
    .without_relay();
    if scheme != Scheme::F3 {
        quality = quality.without_feedback();
    }
    let quality = plan.add(quality);

    // AVERAGE per (window, segment).
    let feedback_mode = match scheme {
        Scheme::F0 => FeedbackMode::Ignore,
        Scheme::F1 => FeedbackMode::GuardOutput,
        Scheme::F2 => FeedbackMode::Exploit,
        Scheme::F3 => FeedbackMode::ExploitAndPropagate,
    };
    let average = WindowAggregate::new(
        "AVERAGE",
        schema,
        "timestamp",
        config.window,
        &["segment"],
        AggregateFunction::Avg("speed".into()),
    )
    .map_err(dsms_engine::EngineError::from)?
    .with_feedback_mode(feedback_mode);
    let average_schema = average.output_schema().clone();
    let average = plan.add(average);

    // The display: renders results and issues viewport feedback on zoom.
    let schedule = ZoomSchedule::new(
        segments,
        config.visible_segments,
        zoom_frequency,
        duration,
        config.zoom_seed,
    );
    let (display, rendered) = SpeedMapDisplay::new(
        "MAP",
        average_schema,
        "window",
        "segment",
        0..segments,
        schedule,
        config.render_cost,
        true,
    );
    let display = plan.add(display);

    plan.connect_simple(source, quality)?;
    plan.connect_simple(quality, average)?;
    plan.connect_simple(average, display)?;
    Ok((plan, SpeedmapPlanHandles { rendered }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Experiment1Config, Experiment2Config};

    #[test]
    fn imputation_plans_validate() {
        let config = Experiment1Config::small();
        for feedback in [false, true] {
            let (plan, _handles) = imputation_plan(&config, feedback).unwrap();
            plan.validate().unwrap();
            assert_eq!(plan.node_count(), 5);
        }
    }

    #[test]
    fn speedmap_plans_validate_for_every_scheme() {
        let config = Experiment2Config::small();
        for scheme in [Scheme::F0, Scheme::F1, Scheme::F2, Scheme::F3] {
            let (plan, _handles) =
                speedmap_plan(&config, scheme, StreamDuration::from_minutes(2)).unwrap();
            plan.validate().unwrap();
            assert_eq!(plan.node_count(), 4);
        }
    }
}
