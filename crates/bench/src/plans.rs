//! Builders for the two query plans of Figure 4, composed with the fluent
//! [`StreamBuilder`] API (the raw `QueryPlan` IR stays available as the
//! low-level escape hatch; see `dsms_engine::builder`).
//!
//! * [`imputation_plan`] — Figure 4(a): a stream of sensor readings is split
//!   into a clean path and a dirty path; the dirty path goes through the
//!   expensive IMPUTE operator; PACE (or a plain UNION for the baseline)
//!   merges both paths under a disorder bound.
//! * [`speedmap_plan`] — Figure 4(b): a data-quality filter feeds a windowed
//!   AVERAGE per segment whose results drive the speed-map display; the
//!   display issues event-driven viewport feedback exploited under schemes
//!   F0–F3.
//! * [`partition_scaling_plan`] — the data-parallel scaling experiment: the
//!   per-detector windowed average, its per-tuple cost modelling a blocking
//!   archive lookup, replicated N ways behind a shuffle/merge pair.

use crate::display::{DisplayHandle, SpeedMapDisplay};
use crate::experiments::{Experiment1Config, Experiment2Config, Scheme};
use dsms_engine::{EngineResult, QueryPlan, StreamBuilder};
use dsms_feedback::FeedbackSpec;
use dsms_operators::aggregate::FeedbackMode;
use dsms_operators::WindowAggregate;
use dsms_operators::{
    AggregateFunction, ArchivalStore, Costed, GeneratorSource, Impute, Merge, Pace, QualityFilter,
    Shuffle, StreamOps, TimedSink, TimedSinkHandle, TuplePredicate, VecSource,
};
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::{StreamDuration, Tuple, Value};
use dsms_workloads::{ImputationGenerator, TrafficGenerator, ZoomSchedule};
use std::time::Duration;

/// Handles needed to evaluate Experiment 1 after the plan has run.
pub struct ImputationPlanHandles {
    /// Arrival-timed output of the merge operator.
    pub output: TimedSinkHandle,
}

/// Builds the imputation plan (Figure 4a).
///
/// With `feedback` set, the merge operator is PACE (drops late tuples and
/// issues assumed feedback that IMPUTE and the split exploit); without it, the
/// merge is a plain UNION and nothing is dropped or fed back — the Figure 5
/// baseline.
pub fn imputation_plan(
    config: &Experiment1Config,
    feedback: bool,
) -> EngineResult<(QueryPlan, ImputationPlanHandles)> {
    let schema = ImputationGenerator::schema();
    let builder = StreamBuilder::new().with_page_capacity(config.page_capacity);

    let generator = ImputationGenerator::new(config.stream.clone());
    let readings = builder.source_as(
        GeneratorSource::new("sensor-source", generator)
            .with_punctuation("timestamp", config.punctuation_period)
            .with_batch_size(config.source_batch)
            .with_pacing(config.speedup),
        schema.clone(),
    )?;

    let (dirty, clean) = readings
        .split("split-dirty-clean", TuplePredicate::new("speed is null", |t| t.has_null()))?;
    let imputed = dirty.apply_as(
        Impute::new(
            "IMPUTE",
            "speed",
            "detector",
            ArchivalStore::synthetic(config.lookup_cost, 45.0),
        ),
        schema.clone(),
    )?;

    let merged = if feedback {
        imputed.combine(
            clean,
            Pace::new("PACE", schema, 2, "timestamp", config.tolerance)
                .with_feedback_granularity(config.feedback_granularity),
        )?
    } else {
        imputed.union(clean, "UNION")?
    };

    let (sink, output) = TimedSink::new("speed-map-feed");
    merged.sink(sink.with_watermark("timestamp"))?;
    Ok((builder.build()?, ImputationPlanHandles { output }))
}

/// Handles needed to evaluate Experiment 2 after the plan has run.
pub struct SpeedmapPlanHandles {
    /// Results actually rendered by the display.
    pub rendered: DisplayHandle,
}

/// Builds the speed-map plan (Figure 4b) wired for one of the schemes F0–F3
/// and one feedback frequency.
pub fn speedmap_plan(
    config: &Experiment2Config,
    scheme: Scheme,
    zoom_frequency: StreamDuration,
) -> EngineResult<(QueryPlan, SpeedmapPlanHandles)> {
    let schema = TrafficGenerator::schema();
    let builder = StreamBuilder::new().with_page_capacity(config.page_capacity);

    let generator = TrafficGenerator::new(config.stream.clone());
    let segments = config.stream.segments;
    let duration = config.stream.duration;
    let readings = builder.source_as(
        GeneratorSource::new("detector-source", generator)
            .with_punctuation("timestamp", config.punctuation_period)
            .with_batch_size(config.source_batch),
        schema.clone(),
    )?;

    // σQ — the data-quality filter at the bottom of the plan.  It exploits
    // (relayed) feedback only under scheme F3.
    let mut quality = QualityFilter::new(
        "QUALITY",
        schema.clone(),
        TuplePredicate::new("plausible speed", |t| {
            t.value_by_name("speed").map(|v| !v.is_null()).unwrap_or(false)
                && t.float("speed").map(|s| (0.0..=120.0).contains(&s)).unwrap_or(false)
        }),
        config.validation_cost,
    )
    .without_relay();
    if scheme != Scheme::F3 {
        quality = quality.without_feedback();
    }

    // AVERAGE per (window, segment).
    let feedback_mode = match scheme {
        Scheme::F0 => FeedbackMode::Ignore,
        Scheme::F1 => FeedbackMode::GuardOutput,
        Scheme::F2 => FeedbackMode::Exploit,
        Scheme::F3 => FeedbackMode::ExploitAndPropagate,
    };
    let average = WindowAggregate::new(
        "AVERAGE",
        schema,
        "timestamp",
        config.window,
        &["segment"],
        AggregateFunction::Avg("speed".into()),
    )
    .map_err(dsms_engine::EngineError::from)?
    .with_feedback_mode(feedback_mode);
    let average_schema = average.output_schema().clone();

    // The display: renders results and issues viewport feedback on zoom.
    let schedule = ZoomSchedule::new(
        segments,
        config.visible_segments,
        zoom_frequency,
        duration,
        config.zoom_seed,
    );
    let (display, rendered) = SpeedMapDisplay::new(
        "MAP",
        average_schema,
        "window",
        "segment",
        0..segments,
        schedule,
        config.render_cost,
        true,
    );

    readings.apply(quality)?.apply(average)?.sink(display)?;
    Ok((builder.build()?, SpeedmapPlanHandles { rendered }))
}

/// Handles needed to evaluate a partition-scaling run after the plan has run.
pub struct PartitionScalingHandles {
    /// Arrival-timed sink output (the merged aggregate results).
    pub output: TimedSinkHandle,
}

/// The per-detector windowed average replicated by the partition-scaling
/// experiment: AVG(speed) per (1-minute window, detector).
fn scaling_aggregate(name: String) -> WindowAggregate {
    WindowAggregate::new(
        name,
        TrafficGenerator::schema(),
        "timestamp",
        StreamDuration::from_minutes(1),
        &["detector"],
        AggregateFunction::Avg("speed".into()),
    )
    .expect("valid aggregate spec")
}

/// [`scaling_aggregate`] with each input tuple charged `lookup_cost` of
/// *blocking* time — the archival-lookup model of Experiment 1, and the
/// reason replicas scale even on a single core (blocked replicas overlap
/// their waits).
fn scaling_stage(name: String, lookup_cost: Duration) -> Costed<WindowAggregate> {
    Costed::blocking_io(scaling_aggregate(name), lookup_cost)
}

/// Builds the partition-scaling plan over a pre-materialized traffic stream:
///
/// ```text
/// source ─ shuffle(detector) ─ AVG×N ─ merge ─ sink      (partitions ≥ 2)
/// source ─ AVG ─ sink                                    (partitions = 1)
/// ```
///
/// The sink subscribes one (never-matching) assumed feedback mid-stream —
/// declared at composition time via [`FeedbackSpec`] — so every run also
/// exercises the merge→replica broadcast path under load without perturbing
/// the output.  The single-replica and partitioned plans produce the same
/// output multiset: the stage is grouped by `detector`, which is also the
/// shuffle key.
pub fn partition_scaling_plan(
    tuples: Vec<Tuple>,
    partitions: usize,
    lookup_cost: Duration,
) -> EngineResult<(QueryPlan, PartitionScalingHandles)> {
    let schema = TrafficGenerator::schema();
    let builder = StreamBuilder::new().with_page_capacity(32).with_queue_capacity(8);
    let readings = builder.source_as(
        VecSource::new("traffic-source", tuples)
            .with_punctuation("timestamp", StreamDuration::from_secs(60))
            .with_batch_size(64),
        schema.clone(),
    )?;

    let output_schema = scaling_aggregate("probe".into()).output_schema().clone();
    let harmless = FeedbackSpec::assumed(
        Pattern::for_attributes(
            output_schema.clone(),
            &[("detector", PatternItem::Ge(Value::Int(i64::MAX / 2)))],
        )
        .map_err(dsms_engine::EngineError::from)?,
    )
    .after_tuples(64);

    let aggregated = if partitions <= 1 {
        readings.apply(scaling_stage("AVG".into(), lookup_cost))?
    } else {
        let shuffle = Shuffle::new("scale-shuffle", schema, &["detector"], partitions)?;
        let merge = Merge::new("scale-merge", output_schema, partitions);
        readings
            .partitioned_stage(shuffle, merge, |i| scaling_stage(format!("AVG-{i}"), lookup_cost))?
    };

    let (sink, output) = TimedSink::new("scale-sink");
    aggregated.with_feedback(harmless)?.sink(sink)?;
    Ok((builder.build()?, PartitionScalingHandles { output }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Experiment1Config, Experiment2Config};

    #[test]
    fn imputation_plans_validate() {
        let config = Experiment1Config::small();
        for feedback in [false, true] {
            let (plan, _handles) = imputation_plan(&config, feedback).unwrap();
            plan.validate().unwrap();
            assert_eq!(plan.node_count(), 5);
        }
    }

    #[test]
    fn speedmap_plans_validate_for_every_scheme() {
        let config = Experiment2Config::small();
        for scheme in [Scheme::F0, Scheme::F1, Scheme::F2, Scheme::F3] {
            let (plan, _handles) =
                speedmap_plan(&config, scheme, StreamDuration::from_minutes(2)).unwrap();
            plan.validate().unwrap();
            assert_eq!(plan.node_count(), 4);
        }
    }
}
