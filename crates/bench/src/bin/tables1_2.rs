//! Prints Tables 1 and 2 of the paper — the operator characterizations for
//! COUNT and JOIN — as derived by `dsms_feedback::characterization`, so the
//! analytic tables can be checked against the implementation directly.
//!
//! Usage:
//!   cargo run -p dsms-bench --bin tables1_2

use dsms_feedback::{
    characterize_aggregate, characterize_join, AggregateSpec, AttributeMapping, Characterization,
    JoinSpec, Monotonicity, PropagationRule,
};
use dsms_punctuation::{Pattern, PatternItem};
use dsms_types::{DataType, Schema, Value};

fn describe(ch: &Characterization) -> String {
    let actions: Vec<String> = ch.actions.iter().map(|a| a.name().to_string()).collect();
    let propagation = match &ch.propagation {
        PropagationRule::ToInputs(v) => format!(
            "propagate to inputs {:?}",
            v.iter().map(|(i, p)| format!("{i}: {p}")).collect::<Vec<_>>()
        ),
        PropagationRule::GroupsFromState => "propagate matching groups (from state)".to_string(),
        PropagationRule::None => "no propagation".to_string(),
    };
    if actions.is_empty() {
        format!("null response; {propagation}")
    } else {
        format!("{}; {propagation}", actions.join(" + "))
    }
}

fn main() {
    // ----- Table 1: COUNT with output (g, a) -----
    let output = Schema::shared(&[("g", DataType::Int), ("a", DataType::Int)]);
    let input = Schema::shared(&[("g", DataType::Int), ("v", DataType::Float)]);
    let spec = AggregateSpec {
        output: output.clone(),
        input: input.clone(),
        group_attributes: vec![0],
        aggregate_attribute: 1,
        input_mapping: AttributeMapping::by_name(output.clone(), input).unwrap(),
        monotonicity: Monotonicity::NonDecreasing,
    };
    println!("Table 1 — characterization of COUNT (output schema (g, a))");
    let rows = [
        (
            "¬[g, *]",
            Pattern::for_attributes(output.clone(), &[("g", PatternItem::Eq(Value::Int(7)))])
                .unwrap(),
        ),
        (
            "¬[*, a]",
            Pattern::for_attributes(output.clone(), &[("a", PatternItem::Eq(Value::Int(10)))])
                .unwrap(),
        ),
        (
            "¬[*, ≥a]",
            Pattern::for_attributes(output.clone(), &[("a", PatternItem::Ge(Value::Int(10)))])
                .unwrap(),
        ),
        (
            "¬[*, >a]",
            Pattern::for_attributes(output.clone(), &[("a", PatternItem::Gt(Value::Int(10)))])
                .unwrap(),
        ),
        (
            "¬[*, ≤a]",
            Pattern::for_attributes(output.clone(), &[("a", PatternItem::Le(Value::Int(10)))])
                .unwrap(),
        ),
        (
            "¬[*, <a]",
            Pattern::for_attributes(output.clone(), &[("a", PatternItem::Lt(Value::Int(10)))])
                .unwrap(),
        ),
    ];
    for (label, pattern) in rows {
        let ch = characterize_aggregate(&spec, &pattern).unwrap();
        println!("  {label:<10} {}", describe(&ch));
    }

    // ----- Table 2: JOIN over A(l, j) ⋈ B(j, r), output (l, j, r) -----
    let left = Schema::shared(&[("l", DataType::Int), ("j", DataType::Int)]);
    let right = Schema::shared(&[("j", DataType::Int), ("r", DataType::Int)]);
    let join_output =
        Schema::shared(&[("l", DataType::Int), ("j", DataType::Int), ("r", DataType::Int)]);
    let join_spec = JoinSpec {
        output: join_output.clone(),
        left: left.clone(),
        right: right.clone(),
        left_attributes: vec![0],
        join_attributes: vec![1],
        right_attributes: vec![2],
        left_mapping: AttributeMapping::by_name(join_output.clone(), left).unwrap(),
        right_mapping: AttributeMapping::by_name(join_output.clone(), right).unwrap(),
    };
    println!();
    println!("Table 2 — characterization of JOIN (output schema (L, J, R))");
    let rows = [
        (
            "¬[*, j, *]",
            Pattern::for_attributes(join_output.clone(), &[("j", PatternItem::Eq(Value::Int(4)))])
                .unwrap(),
        ),
        (
            "¬[l, *, *]",
            Pattern::for_attributes(join_output.clone(), &[("l", PatternItem::Eq(Value::Int(50)))])
                .unwrap(),
        ),
        (
            "¬[*, *, r]",
            Pattern::for_attributes(join_output.clone(), &[("r", PatternItem::Eq(Value::Int(9)))])
                .unwrap(),
        ),
        (
            "¬[l, *, r]",
            Pattern::for_attributes(
                join_output.clone(),
                &[("l", PatternItem::Eq(Value::Int(50))), ("r", PatternItem::Eq(Value::Int(50)))],
            )
            .unwrap(),
        ),
    ];
    for (label, pattern) in rows {
        let ch = characterize_join(&join_spec, &pattern).unwrap();
        println!("  {label:<11} {}", describe(&ch));
    }
}
