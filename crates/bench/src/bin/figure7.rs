//! Regenerates Figure 7: total execution time of the speed-map plan under
//! feedback schemes F0–F3 at viewport-change frequencies of 2, 4 and 6
//! minutes.
//!
//! Usage:
//!   cargo run --release -p dsms-bench --bin figure7 [--small] [--csv FILE]

use dsms_bench::report::{experiment2_csv, experiment2_table};
use dsms_bench::{run_experiment2, Experiment2Config};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let csv_file: Option<PathBuf> =
        args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1)).map(PathBuf::from);

    let config = if small { Experiment2Config::small() } else { Experiment2Config::paper() };
    let frequencies = [2i64, 4, 6];
    eprintln!(
        "running experiment 2 ({} tuples per run, {} runs)…",
        config.stream.expected_tuples(),
        frequencies.len() * 4
    );

    let result = run_experiment2(&config, &frequencies).expect("experiment 2 failed");
    print!("{}", experiment2_table(&result, &frequencies));

    if let Some(file) = csv_file {
        std::fs::write(&file, experiment2_csv(&result)).expect("cannot write csv");
        println!("grid written to {}", file.display());
    }
}
