//! Regenerates Figures 5 and 6: the imputation-plan output pattern without
//! feedback (PACE as plain UNION) and with PACE + assumed feedback.
//!
//! Usage:
//!   cargo run --release -p dsms-bench --bin figure5_6 [--small] [--csv DIR]
//!
//! Prints the headline numbers (fraction of imputed tuples lost, paper: 97%
//! without feedback vs 29% with feedback) and, with `--csv`, writes the two
//! scatter series (tuple id vs output time, clean vs imputed) that the
//! figures plot.

use dsms_bench::report::{experiment1_csv, experiment1_summary};
use dsms_bench::{run_experiment1, Experiment1Config};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let csv_dir: Option<PathBuf> =
        args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1)).map(PathBuf::from);

    let config = if small { Experiment1Config::small() } else { Experiment1Config::paper() };
    eprintln!(
        "running experiment 1 ({} tuples, lookup cost {:?}, tolerance {} ms)…",
        config.stream.tuples,
        config.lookup_cost,
        config.tolerance.as_millis()
    );

    let baseline = run_experiment1(&config, false).expect("baseline run failed");
    eprintln!("baseline (no feedback) finished in {:.2}s", baseline.elapsed.as_secs_f64());
    let feedback = run_experiment1(&config, true).expect("feedback run failed");
    eprintln!("feedback run finished in {:.2}s", feedback.elapsed.as_secs_f64());

    print!("{}", experiment1_summary(&baseline, &feedback));

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("cannot create csv directory");
        std::fs::write(dir.join("figure5_no_feedback.csv"), experiment1_csv(&baseline))
            .expect("cannot write figure5 csv");
        std::fs::write(dir.join("figure6_with_feedback.csv"), experiment1_csv(&feedback))
            .expect("cannot write figure6 csv");
        println!("series written to {}", dir.display());
    }
}
