//! # feedback-dsms
//!
//! Umbrella crate for the reproduction of *"Inter-Operator Feedback in Data
//! Stream Management Systems via Punctuation"* (Fernández-Moctezuma, Tufte,
//! Li — CIDR 2009).
//!
//! The actual functionality lives in the workspace crates, re-exported here
//! for convenience so examples and downstream users can depend on a single
//! crate:
//!
//! * [`types`] — values, schemas, tuples, stream time;
//! * [`punctuation`] — embedded punctuation, pattern algebra, schemes,
//!   progress tracking;
//! * [`feedback`] — **the paper's contribution**: feedback punctuation
//!   (assumed `¬`, desired `?`, demanded `!`), correctness, characterizations,
//!   registries and policies;
//! * [`engine`] — the NiagaraST-style push engine (pages, control channels,
//!   executors);
//! * [`operators`] — the feedback-aware operator library;
//! * [`manager`] — the multi-query [`prelude::PipelineManager`]: shared
//!   named sources, prefix deduplication, runtime query lifecycle with
//!   per-query feedback isolation (see `docs/PIPELINES.md`);
//! * [`workloads`] — deterministic synthetic workload generators.
//!
//! See `examples/quickstart.rs` for a first end-to-end query and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use dsms_engine as engine;
pub use dsms_feedback as feedback;
pub use dsms_manager as manager;
pub use dsms_operators as operators;
pub use dsms_punctuation as punctuation;
pub use dsms_types as types;
pub use dsms_workloads as workloads;

/// Commonly used items, for glob import in examples and tests.
///
/// # Examples
///
/// A first end-to-end query: replay a small stream, filter it, collect the
/// results, and run the same plan on both executors.
///
/// ```
/// use feedback_dsms::prelude::*;
///
/// let schema = Schema::shared(&[("ts", DataType::Timestamp), ("v", DataType::Int)]);
/// let tuples: Vec<Tuple> = (0..50)
///     .map(|i| {
///         Tuple::new(
///             schema.clone(),
///             vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % 5)],
///         )
///     })
///     .collect();
///
/// for threaded in [false, true] {
///     let builder = StreamBuilder::new().with_page_capacity(8);
///     let results = builder
///         .source(VecSource::new("source", tuples.clone()))?
///         .select("select", TuplePredicate::new("v != 0", |t| t.int("v").unwrap_or(0) != 0))?
///         .sink_collect("sink")?;
///     let plan = builder.build()?;
///
///     let report =
///         if threaded { ThreadedExecutor::run(plan)? } else { SyncExecutor::run(plan)? };
///     assert_eq!(results.lock().len(), 40);
///     assert_eq!(report.total_feedback_dropped(), 0);
/// }
/// # Ok::<(), feedback_dsms::engine::EngineError>(())
/// ```
pub mod prelude {
    pub use dsms_engine::{
        ExecutionReport, Operator, OperatorContext, PooledExecutor, QueryPlan, RecoveryPolicy,
        RecoverySummary, SourceState, Stream, StreamBuilder, StreamItem, SyncExecutor,
        ThreadedExecutor,
    };
    pub use dsms_feedback::{
        FeedbackIntent, FeedbackMerge, FeedbackPunctuation, FeedbackRegistry, FeedbackRoles,
        FeedbackSpec, FeedbackTrigger, GuardDecision,
    };
    pub use dsms_manager::{
        ExecutorKind, ManagerOutcome, ManagerSummary, PipelineManager, QueryReport, QueryState,
        SourceRef,
    };
    pub use dsms_operators::{
        AggregateFunction, ArchivalStore, Chaos, CollectSink, Costed, Duplicate, ElasticController,
        ElasticPolicy, ElasticReplica, FanoutController, FaultSpec, GeneratorSource, ImpatientJoin,
        Impute, Merge, OnDemandGate, Pace, PartitionedExt, PartitionedStage, Prioritizer, Project,
        QualityFilter, Select, SharedFanout, Shuffle, Split, StreamOps, SymmetricHashJoin,
        ThriftyJoin, TimedSink, TuplePredicate, Union, VecSource, WindowAggregate,
    };
    pub use dsms_punctuation::{
        CompiledPattern, Pattern, PatternItem, Punctuation, PunctuationScheme,
    };
    pub use dsms_types::{
        fixed_hash, DataType, Field, FixedHasher, FixedState, Schema, SchemaRef, StreamDuration,
        Timestamp, Tuple, TupleBuilder, Value,
    };
}

#[cfg(test)]
mod tests {
    /// Every prelude re-export must compile and resolve; this also drives a
    /// tiny plan end-to-end on both executors, so a broken re-export of any
    /// engine or operator type fails here rather than in downstream users.
    #[test]
    fn prelude_reexports_compile_and_resolve() {
        use crate::prelude::*;

        let schema = Schema::shared(&[("ts", DataType::Timestamp), ("v", DataType::Int)]);
        let tuple =
            Tuple::new(schema.clone(), vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(1)]);
        let built = TupleBuilder::new(schema.clone())
            .set("ts", Value::Timestamp(Timestamp::EPOCH))
            .unwrap()
            .set("v", Value::Int(1))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(tuple, built);

        let pattern = Pattern::all_wildcards(schema.clone());
        assert!(pattern.matches(&tuple));
        let feedback = FeedbackPunctuation::assumed(pattern.clone(), "test");
        assert_eq!(feedback.intent(), FeedbackIntent::Assumed);

        let mut registry = FeedbackRegistry::new("test");
        registry.register(feedback).unwrap();
        assert_eq!(registry.active_assumed(), 1);
        assert!(matches!(registry.decide(&tuple), GuardDecision::Suppress));

        let scheme = PunctuationScheme::undelimited(schema.clone());
        assert!(!scheme.is_delimited("ts").unwrap());
        let punctuation = Punctuation::progress(schema.clone(), "ts", Timestamp::EPOCH).unwrap();
        let _: &PatternItem = punctuation.pattern().item_for("ts").unwrap();

        // A minimal source -> select -> sink plan, composed with the fluent
        // builder and run on all three executors.
        let run = |executor: usize| -> ExecutionReport {
            let tuples: Vec<Tuple> = (0..20)
                .map(|i| {
                    Tuple::new(
                        schema.clone(),
                        vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i % 4)],
                    )
                })
                .collect();
            let builder = StreamBuilder::new().with_page_capacity(4);
            let results = builder
                .source(
                    VecSource::new("source", tuples)
                        .with_punctuation("ts", StreamDuration::from_secs(5))
                        .with_batch_size(4),
                )
                .unwrap()
                .select("select", TuplePredicate::new("v >= 1", |t| t.int("v").unwrap_or(0) >= 1))
                .unwrap()
                .sink_collect("sink")
                .unwrap();
            let plan = builder.build().unwrap();
            let report = match executor {
                0 => SyncExecutor::run(plan).unwrap(),
                1 => ThreadedExecutor::run(plan).unwrap(),
                _ => PooledExecutor::run(plan).unwrap(),
            };
            assert_eq!(results.lock().len(), 15, "executor={executor}");
            report
        };
        for executor in 0..3 {
            let report = run(executor);
            let source_metrics = report.operator("source").unwrap();
            assert_eq!(source_metrics.tuples_out, 20);
        }

        // The remaining prelude operators must at least construct through the
        // re-exported paths (drift in any manifest or rename breaks this).
        let _ = Project::new("project", schema.clone(), &["v"]).unwrap();
        let _ = Duplicate::new("dup", schema.clone(), 2);
        let _ = Split::new(
            "split",
            schema.clone(),
            TuplePredicate::new("v >= 2", |t| t.int("v").unwrap_or(0) >= 2),
        );
        let _ = Union::new("union", schema.clone(), 2);
        let _ = Prioritizer::new("prio", schema.clone(), 4);
        let _ = QualityFilter::new(
            "qf",
            schema.clone(),
            TuplePredicate::new("ok", |_| true),
            std::time::Duration::from_micros(1),
        );
        let _ = OnDemandGate::new("gate", schema.clone(), 8);
        let _ = WindowAggregate::new(
            "COUNT",
            schema.clone(),
            "ts",
            StreamDuration::from_secs(60),
            &[],
            AggregateFunction::Count,
        )
        .unwrap();
        let _ = SymmetricHashJoin::new(
            "join",
            schema.clone(),
            schema.clone(),
            &["v"],
            "ts",
            StreamDuration::from_secs(60),
        )
        .unwrap();
        let _ = ArchivalStore::synthetic(std::time::Duration::from_micros(1), 40.0);
        let shuffle = Shuffle::new("shuffle", schema.clone(), &["v"], 2).unwrap();
        let merge = Merge::new("merge", schema.clone(), 2);
        let _ = Costed::blocking_io(
            Select::new("costed", schema.clone(), TuplePredicate::always()),
            std::time::Duration::ZERO,
        );
        // Builder-layer re-exports: roles, specs, and the fluent types.
        assert!(FeedbackRoles::exploiter().accepts_feedback());
        let spec = FeedbackSpec::assumed(Pattern::all_wildcards(schema.clone())).after_tuples(3);
        assert_eq!(spec.trigger(), FeedbackTrigger::AfterTuples(3));
        let builder = StreamBuilder::new();
        let stream: Stream =
            builder.source_as(VecSource::new("probe", Vec::new()), schema.clone()).unwrap();
        assert_eq!(stream.producer(), "probe");
        drop(stream);
        let _ = builder.build().unwrap();

        let mut fb_merge = FeedbackMerge::new(2);
        assert!(fb_merge
            .assert_from(
                0,
                FeedbackPunctuation::assumed(Pattern::all_wildcards(schema.clone()), "x")
            )
            .is_none());
        let mut partitioned_plan = QueryPlan::new();
        let stage: PartitionedStage = partitioned_plan
            .partitioned_stage(shuffle, merge, |i| {
                Select::new(format!("replica-{i}"), schema.clone(), TuplePredicate::always())
            })
            .unwrap();
        assert_eq!(stage.partitions(), 2);
        let state: SourceState = SourceState::Exhausted;
        assert!(matches!(state, SourceState::Exhausted));
        let item = StreamItem::Tuple(tuple);
        assert!(matches!(item, StreamItem::Tuple(_)));

        // Manager-layer re-exports: a two-query run over one shared source.
        let tuples: Vec<Tuple> = (0..8)
            .map(|i| {
                Tuple::new(
                    schema.clone(),
                    vec![Value::Timestamp(Timestamp::from_secs(i)), Value::Int(i)],
                )
            })
            .collect();
        let mut pipeline_manager = PipelineManager::new();
        pipeline_manager.add_source("feed", VecSource::new("feed", tuples)).unwrap();
        let source_ref: SourceRef = pipeline_manager.source_ref("feed").unwrap();
        drop(source_ref);
        for name in ["qa", "qb"] {
            let builder = StreamBuilder::new();
            builder
                .source(pipeline_manager.source_ref("feed").unwrap())
                .unwrap()
                .select("evens", TuplePredicate::new("even", |t| t.int("v").unwrap_or(0) % 2 == 0))
                .unwrap()
                .sink_collect("sink")
                .unwrap();
            pipeline_manager.register(name, builder.build().unwrap()).unwrap();
        }
        assert_eq!(pipeline_manager.query_state("qa"), Some(QueryState::Attached));
        let outcome: ManagerOutcome = pipeline_manager.run(ExecutorKind::Sync).unwrap();
        let summary: &ManagerSummary = &outcome.summary;
        assert_eq!(summary.queries_active, 2);
        assert!(summary.shared_prefix_hits > 0);
        let query_report: &QueryReport = &outcome.queries[0];
        assert_eq!(query_report.name, "qa");
        let _ = SharedFanout::new("fanout", schema.clone(), 2);
        let _ = FanoutController::shared();
    }

    /// Every public module re-export (`types`, `punctuation`, `feedback`,
    /// `engine`, `operators`, `workloads`) must resolve through the umbrella
    /// paths, catching future manifest or crate-name drift at compile time.
    #[test]
    fn module_reexports_resolve_through_umbrella_paths() {
        let schema = crate::types::Schema::shared(&[("segment", crate::types::DataType::Int)]);
        let tuple = crate::types::Tuple::new(schema.clone(), vec![crate::types::Value::Int(3)]);

        let pattern = crate::punctuation::Pattern::all_wildcards(schema.clone());
        assert!(pattern.matches(&tuple));

        let feedback = crate::feedback::FeedbackPunctuation::desired(pattern, "umbrella");
        assert_eq!(feedback.intent(), crate::feedback::FeedbackIntent::Desired);

        let plan = crate::engine::QueryPlan::new();
        assert_eq!(plan.node_count(), 0);

        let _ = crate::operators::Select::new(
            "select",
            schema,
            crate::operators::TuplePredicate::new("any", |_| true),
        );

        let config = crate::workloads::TrafficConfig::small();
        let generated = crate::workloads::TrafficGenerator::new(config).count();
        assert!(generated > 0, "the small traffic workload must produce tuples");
    }
}
