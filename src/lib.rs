//! # feedback-dsms
//!
//! Umbrella crate for the reproduction of *"Inter-Operator Feedback in Data
//! Stream Management Systems via Punctuation"* (Fernández-Moctezuma, Tufte,
//! Li — CIDR 2009).
//!
//! The actual functionality lives in the workspace crates, re-exported here
//! for convenience so examples and downstream users can depend on a single
//! crate:
//!
//! * [`types`] — values, schemas, tuples, stream time;
//! * [`punctuation`] — embedded punctuation, pattern algebra, schemes,
//!   progress tracking;
//! * [`feedback`] — **the paper's contribution**: feedback punctuation
//!   (assumed `¬`, desired `?`, demanded `!`), correctness, characterizations,
//!   registries and policies;
//! * [`engine`] — the NiagaraST-style push engine (pages, control channels,
//!   executors);
//! * [`operators`] — the feedback-aware operator library;
//! * [`workloads`] — deterministic synthetic workload generators.
//!
//! See `examples/quickstart.rs` for a first end-to-end query and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use dsms_engine as engine;
pub use dsms_feedback as feedback;
pub use dsms_operators as operators;
pub use dsms_punctuation as punctuation;
pub use dsms_types as types;
pub use dsms_workloads as workloads;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use dsms_engine::{
        ExecutionReport, Operator, OperatorContext, QueryPlan, SourceState, StreamItem,
        SyncExecutor, ThreadedExecutor,
    };
    pub use dsms_feedback::{
        FeedbackIntent, FeedbackPunctuation, FeedbackRegistry, GuardDecision,
    };
    pub use dsms_operators::{
        AggregateFunction, ArchivalStore, CollectSink, Duplicate, GeneratorSource, ImpatientJoin,
        Impute, OnDemandGate, Pace, Prioritizer, Project, QualityFilter, Select, Split,
        SymmetricHashJoin, ThriftyJoin, TimedSink, TuplePredicate, Union, VecSource,
        WindowAggregate,
    };
    pub use dsms_punctuation::{Pattern, PatternItem, Punctuation, PunctuationScheme};
    pub use dsms_types::{
        DataType, Field, Schema, SchemaRef, StreamDuration, Timestamp, Tuple, TupleBuilder, Value,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile_and_resolve() {
        use crate::prelude::*;
        let schema = Schema::shared(&[("ts", DataType::Timestamp), ("v", DataType::Int)]);
        let tuple = Tuple::new(
            schema.clone(),
            vec![Value::Timestamp(Timestamp::EPOCH), Value::Int(1)],
        );
        let pattern = Pattern::all_wildcards(schema);
        assert!(pattern.matches(&tuple));
        let feedback = FeedbackPunctuation::assumed(pattern, "test");
        assert_eq!(feedback.intent(), FeedbackIntent::Assumed);
    }
}
